// End-to-end memcached tests: full client/server round trips over the UCR
// (verbs) transport and over the byte-stream stacks, mixed-transport
// serving, multi-server pools, and the §V zero-copy properties.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/testbed.hpp"
#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "simnet/netparams.hpp"

namespace rmc::mc {
namespace {

using namespace rmc::literals;
using sim::Scheduler;
using sim::Task;

std::span<const std::byte> val(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}
std::string str(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// One server host + one client host on an IB QDR fabric, with both a UCR
/// frontend and an SDP socket frontend attached to the same server.
struct TestBed {
  Scheduler sched;
  sim::Fabric ib{sched, sim::ib_qdr_link()};
  sim::Host server_host{sched, 0, "server", 8};
  sim::Host client_host{sched, 1, "client", 8};

  verbs::Hca server_hca{sched, ib, server_host};
  verbs::Hca client_hca{sched, ib, client_host};
  ucr::Runtime server_ucr{server_hca};
  ucr::Runtime client_ucr{client_hca};

  sock::NetStack server_sock{sched, ib, server_host, sock::sdp_ib()};
  sock::NetStack client_sock{sched, ib, client_host, sock::sdp_ib()};

  Server server{sched, server_host, {}};

  TestBed() {
    server.attach_ucr_frontend(server_ucr);
    server.attach_socket_frontend(server_sock);
  }

  std::unique_ptr<Client> make_ucr_client() {
    auto client = std::make_unique<Client>(sched, client_host);
    client->add_server_ucr(client_ucr, server_ucr.addr(), server.config().port);
    return client;
  }
  std::unique_ptr<Client> make_sock_client() {
    auto client = std::make_unique<Client>(sched, client_host);
    client->add_server_socket(client_sock, server_sock.addr(), server.config().port);
    return client;
  }

  /// Run a client scenario to completion.
  void run(Task<> task) {
    sched.spawn(std::move(task));
    sched.run();
  }
};

/// The full command matrix, executed against a connected client. Used for
/// both transports so they provably behave identically.
Task<> exercise_full_api(Client& client, bool* done) {
  EXPECT_TRUE((co_await client.connect_all()).ok());

  // set / get round trip with flags.
  EXPECT_TRUE((co_await client.set("greeting", val("hello world"), 77)).ok());
  auto got = co_await client.get("greeting");
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(str(got->data), "hello world");
  EXPECT_EQ(got->flags, 77u);

  // get miss.
  EXPECT_EQ((co_await client.get("missing")).error(), Errc::not_found);

  // add semantics.
  EXPECT_TRUE((co_await client.add("fresh", val("1"))).ok());
  EXPECT_EQ((co_await client.add("fresh", val("2"))).error(), Errc::not_stored);

  // replace semantics.
  EXPECT_EQ((co_await client.replace("nothere", val("x"))).error(), Errc::not_stored);
  EXPECT_TRUE((co_await client.replace("fresh", val("3"))).ok());

  // append / prepend.
  EXPECT_TRUE((co_await client.append("greeting", val("!"))).ok());
  EXPECT_TRUE((co_await client.prepend("greeting", val(">"))).ok());
  got = co_await client.get("greeting");
  EXPECT_EQ(str(got->data), ">hello world!");

  // gets + cas.
  auto with_cas = co_await client.gets("fresh");
  EXPECT_TRUE(with_cas.ok());
  EXPECT_GT(with_cas->cas, 0u);
  EXPECT_TRUE((co_await client.cas("fresh", val("4"), with_cas->cas)).ok());
  EXPECT_EQ((co_await client.cas("fresh", val("5"), with_cas->cas)).error(), Errc::exists);

  // incr / decr.
  EXPECT_TRUE((co_await client.set("count", val("10"))).ok());
  auto n = co_await client.incr("count", 7);
  EXPECT_TRUE(n.ok());
  EXPECT_EQ(*n, 17u);
  n = co_await client.decr("count", 20);
  EXPECT_EQ(*n, 0u);
  EXPECT_EQ((co_await client.incr("missing", 1)).error(), Errc::not_found);

  // delete.
  EXPECT_TRUE((co_await client.del("count")).ok());
  EXPECT_EQ((co_await client.del("count")).error(), Errc::not_found);

  // mget with mixed hits and misses.
  const std::vector<std::string> keys{"greeting", "absent", "fresh"};
  auto multi = co_await client.mget(keys);
  EXPECT_TRUE(multi.ok());
  EXPECT_TRUE((*multi)[0].has_value());
  EXPECT_FALSE((*multi)[1].has_value());
  EXPECT_TRUE((*multi)[2].has_value());
  EXPECT_EQ(str((*multi)[2]->data), "4");

  // flush_all.
  EXPECT_TRUE((co_await client.flush_all()).ok());
  EXPECT_EQ((co_await client.get("greeting")).error(), Errc::not_found);

  *done = true;
}

TEST(EndToEnd, FullApiOverUcr) {
  TestBed bed;
  auto client = bed.make_ucr_client();
  bool done = false;
  bed.run(exercise_full_api(*client, &done));
  EXPECT_TRUE(done);
}

TEST(EndToEnd, FullApiOverSockets) {
  TestBed bed;
  auto client = bed.make_sock_client();
  bool done = false;
  bed.run(exercise_full_api(*client, &done));
  EXPECT_TRUE(done);
}

TEST(EndToEnd, BothFrontendsShareOneStore) {
  // §V-A: the same server serves Sockets and UCR clients simultaneously.
  TestBed bed;
  auto ucr_client = bed.make_ucr_client();
  auto sock_client = bed.make_sock_client();
  bool done = false;
  bed.run([](Client& ucr, Client& sock, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await ucr.connect_all()).ok());
    EXPECT_TRUE((co_await sock.connect_all()).ok());
    // Write over sockets, read over UCR (and vice versa).
    EXPECT_TRUE((co_await sock.set("via-sock", val("text-path"))).ok());
    auto got = co_await ucr.get("via-sock");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(str(got->data), "text-path");
    EXPECT_TRUE((co_await ucr.set("via-ucr", val("rdma-path"))).ok());
    auto got2 = co_await sock.get("via-ucr");
    EXPECT_TRUE(got2.ok());
    EXPECT_EQ(str(got2->data), "rdma-path");
    fin = true;
  }(*ucr_client, *sock_client, done));
  EXPECT_TRUE(done);
}

TEST(EndToEnd, LargeValuesTakeRendezvousBothWays) {
  // > 8 KB: SET value is RDMA-read into the slab; GET value RDMA-read by
  // the client. Data integrity across the full path.
  TestBed bed;
  auto client = bed.make_ucr_client();
  bool done = false;
  bed.run([](TestBed& tb, Client& cli, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await cli.connect_all()).ok());
    Rng rng(42);
    std::vector<std::byte> value(300_KiB);
    for (auto& b : value) b = static_cast<std::byte>(rng() & 0xff);
    tb.client_ucr.register_region(value);

    const auto rendezvous_before = tb.client_ucr.rendezvous_sent();
    EXPECT_TRUE((co_await cli.set("big", value)).ok());
    EXPECT_GT(tb.client_ucr.rendezvous_sent(), rendezvous_before);

    auto got = co_await cli.get("big");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got->data.size(), value.size());
    EXPECT_TRUE(std::equal(value.begin(), value.end(), got->data.begin()));
    // The response came back via the server's rendezvous path.
    EXPECT_GT(tb.server_ucr.rendezvous_sent(), 0u);
    fin = true;
  }(bed, *client, done));
  EXPECT_TRUE(done);
}

TEST(EndToEnd, UcrSetIsZeroCopyIntoSlab) {
  // §V-B: for a large SET the value's final resting place is written by
  // the RDMA read itself — the stored item IS the RDMA destination.
  TestBed bed;
  auto client = bed.make_ucr_client();
  bool done = false;
  bed.run([](TestBed& tb, Client& cli, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await cli.connect_all()).ok());
    std::vector<std::byte> value(64_KiB, std::byte{0x5a});
    tb.client_ucr.register_region(value);
    EXPECT_TRUE((co_await cli.set("zerocopy", value)).ok());
    ItemHeader* item = tb.server.store().get("zerocopy");
    EXPECT_NE(item, nullptr);
    EXPECT_EQ(item->value().size(), 64_KiB);
    EXPECT_EQ(item->value()[1000], std::byte{0x5a});
    fin = true;
  }(bed, *client, done));
  EXPECT_TRUE(done);
}

TEST(EndToEnd, PipelinedMgetOverUcr) {
  TestBed bed;
  auto client = bed.make_ucr_client();
  bool done = false;
  bed.run([](Client& cli, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await cli.connect_all()).ok());
    std::vector<std::string> keys;
    for (int i = 0; i < 32; ++i) {
      const std::string key = "k" + std::to_string(i);
      keys.push_back(key);
      EXPECT_TRUE((co_await cli.set(key, val("value-" + std::to_string(i)))).ok());
    }
    auto result = co_await cli.mget(keys);
    EXPECT_TRUE(result.ok());
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE((*result)[i].has_value());
      EXPECT_EQ(str((*result)[i]->data), "value-" + std::to_string(i));
    }
    fin = true;
  }(*client, done));
  EXPECT_TRUE(done);
}

TEST(EndToEnd, ExpirationVisibleThroughClient) {
  TestBed bed;
  auto client = bed.make_ucr_client();
  bool done = false;
  bed.run([](TestBed& tb, Client& cli, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await cli.connect_all()).ok());
    EXPECT_TRUE((co_await cli.set("ttl", val("v"), 0, 2)).ok());  // 2 s TTL
    auto got = co_await cli.get("ttl");
    EXPECT_TRUE(got.ok());
    co_await tb.sched.delay(3_s);
    EXPECT_EQ((co_await cli.get("ttl")).error(), Errc::not_found);
    fin = true;
  }(bed, *client, done));
  EXPECT_TRUE(done);
}

TEST(EndToEnd, MultiServerPoolRoutesByKeyHash) {
  // Three servers, one client pool: keys spread across servers; each key
  // consistently lands on the same server (§II-C).
  Scheduler sched;
  sim::Fabric ib{sched, sim::ib_qdr_link()};
  sim::Host client_host{sched, 99, "client", 8};
  verbs::Hca client_hca{sched, ib, client_host};
  ucr::Runtime client_ucr{client_hca};
  Client client{sched, client_host};

  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<std::unique_ptr<verbs::Hca>> hcas;
  std::vector<std::unique_ptr<ucr::Runtime>> runtimes;
  std::vector<std::unique_ptr<Server>> servers;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(std::make_unique<sim::Host>(sched, i, "s" + std::to_string(i), 8));
    hcas.push_back(std::make_unique<verbs::Hca>(sched, ib, *hosts.back()));
    runtimes.push_back(std::make_unique<ucr::Runtime>(*hcas.back()));
    servers.push_back(std::make_unique<Server>(sched, *hosts.back(), ServerConfig{}));
    servers.back()->attach_ucr_frontend(*runtimes.back());
    client.add_server_ucr(client_ucr, runtimes.back()->addr(), 11211);
  }

  bool done = false;
  sched.spawn([](Client& cli, std::vector<std::unique_ptr<Server>>& servers2,
                 bool& fin) -> Task<> {
    EXPECT_TRUE((co_await cli.connect_all()).ok());
    for (int i = 0; i < 60; ++i) {
      const std::string key = "user:" + std::to_string(i);
      EXPECT_TRUE((co_await cli.set(key, val("v" + std::to_string(i)))).ok());
    }
    // Every key readable; items distributed across all three stores.
    for (int i = 0; i < 60; ++i) {
      const std::string key = "user:" + std::to_string(i);
      auto got = co_await cli.get(key);
      EXPECT_TRUE(got.ok());
      EXPECT_EQ(str(got->data), "v" + std::to_string(i));
    }
    int populated = 0;
    for (auto& server : servers2) {
      if (server->store().item_count() > 0) ++populated;
    }
    EXPECT_EQ(populated, 3);
    fin = true;
  }(client, servers, done));
  sched.run();
  EXPECT_TRUE(done);
}

TEST(EndToEnd, ServerFailureIsIsolatedAndTimesOut) {
  // §IV-A in action: one server of the pool dies; requests to it time
  // out, requests to the survivor keep working.
  Scheduler sched;
  sim::Fabric ib{sched, sim::ib_qdr_link()};
  sim::Host client_host{sched, 99, "client", 8};
  verbs::Hca client_hca{sched, ib, client_host};
  ucr::Runtime client_ucr{client_hca};
  ClientBehavior behavior;
  behavior.op_timeout = 200_us;
  Client client{sched, client_host, behavior};

  sim::Host h0{sched, 0, "s0", 8}, h1{sched, 1, "s1", 8};
  verbs::Hca hca0{sched, ib, h0}, hca1{sched, ib, h1};
  ucr::Runtime rt0{hca0}, rt1{hca1};
  ServerConfig cfg;
  // Server 0 with zero workers is legal-but-useless; emulate a hung server
  // by giving it a store and workers but pausing... instead: kill it by
  // never attaching a frontend on the request port after connect. We use
  // a different trick: attach, connect, then make the server unresponsive
  // by flooding its worker queue is complex — simplest honest failure is
  // an endpoint the server never answers: attach a frontend, then close
  // the server's endpoints at the UCR layer mid-run.
  Server s0{sched, h0, cfg}, s1{sched, h1, cfg};
  s0.attach_ucr_frontend(rt0);
  s1.attach_ucr_frontend(rt1);
  client.add_server_ucr(client_ucr, rt0.addr(), 11211);
  client.add_server_ucr(client_ucr, rt1.addr(), 11211);

  bool done = false;
  sched.spawn([](Scheduler& sch, Client& cli, ucr::Runtime& rt02, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await cli.connect_all()).ok());
    // Find keys for each server.
    std::string key0, key1;
    for (int i = 0; key0.empty() || key1.empty(); ++i) {
      const std::string key = "k" + std::to_string(i);
      (cli.server_index(key) == 0 ? key0 : key1) = key;
    }
    EXPECT_TRUE((co_await cli.set(key0, val("a"))).ok());
    EXPECT_TRUE((co_await cli.set(key1, val("b"))).ok());

    // Server 0's runtime stops answering: unregister its request handler.
    rt02.register_handler(ucrp::kMsgRequest, {});
    const sim::Time before = sch.now();
    auto dead = co_await cli.get(key0);
    EXPECT_EQ(dead.error(), Errc::timed_out);
    EXPECT_GE(sch.now() - before, 200_us);

    // Survivor unaffected.
    auto alive = co_await cli.get(key1);
    EXPECT_TRUE(alive.ok());
    EXPECT_EQ(str(alive->data), "b");
    fin = true;
  }(sched, client, rt0, done));
  sched.run();
  EXPECT_TRUE(done);
}

TEST(EndToEnd, SocketClientSurvivesServerStats) {
  // stats / version / quit over the text protocol exercise the simple
  // reply paths end to end.
  TestBed bed;
  bool done = false;
  bed.run([](TestBed& tb, bool& fin) -> Task<> {
    auto r = co_await tb.client_sock.connect(tb.server_sock.addr(), 11211);
    EXPECT_TRUE(r.ok());
    sock::Socket* s = *r;
    const std::string cmd = "stats\r\n";
    (void)co_await s->send(val(cmd));
    std::vector<std::byte> buf(8192);
    std::string text;
    while (text.find("END\r\n") == std::string::npos) {
      auto n = co_await s->recv(buf);
      EXPECT_TRUE(n.ok());
      if (!n.ok() || *n == 0) break;
      text.append(reinterpret_cast<const char*>(buf.data()), *n);
    }
    EXPECT_NE(text.find("STAT cmd_get"), std::string::npos);
    EXPECT_NE(text.find("STAT threads 4"), std::string::npos);
    fin = true;
  }(bed, done));
  EXPECT_TRUE(done);
}

TEST(EndToEnd, MemcachedOverUnreliableDatagrams) {
  // §VII future work end to end: the same server, a client on UD
  // endpoints. Small items work; oversized values are rejected cleanly.
  TestBed bed;
  ClientBehavior behavior;
  behavior.unreliable_ucr = true;
  behavior.op_timeout = 500_us;
  Client client{bed.sched, bed.client_host, behavior};
  client.add_server_ucr(bed.client_ucr, bed.server_ucr.addr(), bed.server.config().port);

  bool done = false;
  bed.run([](Client& cli, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await cli.connect_all()).ok());
    EXPECT_TRUE((co_await cli.set("udp-key", val("datagram value"))).ok());
    auto got = co_await cli.get("udp-key");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(str(got->data), "datagram value");

    EXPECT_TRUE((co_await cli.del("udp-key")).ok());
    EXPECT_EQ((co_await cli.get("udp-key")).error(), Errc::not_found);

    // incr/decr over datagrams.
    EXPECT_TRUE((co_await cli.set("n", val("41"))).ok());
    auto n = co_await cli.incr("n", 1);
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(*n, 42u);

    // Too big for a datagram: rejected at the cli, not a hang.
    std::vector<std::byte> big(8_KiB);
    EXPECT_EQ((co_await cli.set("big", big)).error(), Errc::invalid_argument);
    fin = true;
  }(client, done));
  EXPECT_TRUE(done);
}

TEST(EndToEnd, UdGetOfLargeValueFailsCleanly) {
  // Store a big item over a reliable endpoint, then ask for it over UD:
  // the server cannot ship it in a datagram and answers server_error
  // instead of letting the client time out.
  TestBed bed;
  auto rc_client = bed.make_ucr_client();
  ClientBehavior behavior;
  behavior.unreliable_ucr = true;
  behavior.op_timeout = 500_us;
  Client ud_client{bed.sched, bed.client_host, behavior};
  ud_client.add_server_ucr(bed.client_ucr, bed.server_ucr.addr(), bed.server.config().port);

  bool done = false;
  bed.run([](TestBed& tb, Client& rc, Client& ud, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await rc.connect_all()).ok());
    EXPECT_TRUE((co_await ud.connect_all()).ok());
    std::vector<std::byte> big(32_KiB, std::byte{1});
    tb.client_ucr.register_region(big);
    EXPECT_TRUE((co_await rc.set("big", big)).ok());

    const sim::Time before = tb.sched.now();
    auto got = co_await ud.get("big");
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.error(), Errc::no_resources);          // server_error
    EXPECT_LT(tb.sched.now() - before, 100_us);          // no timeout wait
    fin = true;
  }(bed, *rc_client, ud_client, done));
  EXPECT_TRUE(done);
}

TEST(Robustness, OversizedUcrSetGetsErrorNotTimeout) {
  // A 2 MB value exceeds the 1 MB item limit: the server's header handler
  // cannot allocate, and the client must get a prompt error (not hang
  // until its op timeout).
  TestBed bed;
  auto client = bed.make_ucr_client();
  bool done = false;
  bed.run([](TestBed& tb, Client& cli, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await cli.connect_all()).ok());
    std::vector<std::byte> huge(2 * 1024 * 1024);
    tb.client_ucr.register_region(huge);
    const sim::Time before = tb.sched.now();
    auto st = co_await cli.set("monster", huge);
    EXPECT_FALSE(st.ok());
    EXPECT_LT(tb.sched.now() - before, 10_ms);  // an answer, not a timeout
    // The connection is still healthy afterwards.
    EXPECT_TRUE((co_await cli.set("ok", val("fine"))).ok());
    fin = true;
  }(bed, *client, done));
  EXPECT_TRUE(done);
}

TEST(Robustness, GarbageOnTextPortAnswersErrorAndCloses) {
  TestBed bed;
  bool done = false;
  bed.run([](TestBed& tb, bool& fin) -> Task<> {
    auto r = co_await tb.client_sock.connect(tb.server_sock.addr(), 11211);
    sock::Socket* s = *r;
    (void)co_await s->send(val("utter nonsense command\r\n"));
    std::vector<std::byte> buf(256);
    auto n = co_await s->recv(buf);
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(str(std::span<const std::byte>(buf.data(), *n)), "ERROR\r\n");
    // Server closed the connection after the protocol error.
    n = co_await s->recv(buf);
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(*n, 0u);
    fin = true;
  }(bed, done));
  EXPECT_TRUE(done);
}

TEST(Robustness, AbruptClientCloseMidCommandLeavesServerServing) {
  TestBed bed;
  auto client = bed.make_sock_client();
  bool done = false;
  bed.run([](TestBed& tb, Client& cli, bool& fin) -> Task<> {
    // A rogue connection sends half a set command and vanishes.
    auto r = co_await tb.client_sock.connect(tb.server_sock.addr(), 11211);
    (void)co_await (*r)->send(val("set half-done 0 0 100\r\nonly-some-bytes"));
    (*r)->close();
    co_await tb.sched.delay(1_ms);

    // A well-behaved cli is unaffected.
    EXPECT_TRUE((co_await cli.connect_all()).ok());
    EXPECT_TRUE((co_await cli.set("fine", val("value"))).ok());
    auto got = co_await cli.get("fine");
    EXPECT_TRUE(got.ok());
    // The half-written key never materialized.
    EXPECT_EQ((co_await cli.get("half-done")).error(), Errc::not_found);
    fin = true;
  }(bed, *client, done));
  EXPECT_TRUE(done);
}

TEST(Robustness, PipelinedTextRequestsAnswerInOrder) {
  // The text protocol allows pipelining: send many commands before reading
  // anything. The single worker owning the connection must answer them in
  // request order or the stream is garbage.
  TestBed bed;
  bool done = false;
  bed.run([](TestBed& tb, bool& fin) -> Task<> {
    auto r = co_await tb.client_sock.connect(tb.server_sock.addr(), 11211);
    sock::Socket* s = *r;
    std::string burst;
    for (int i = 0; i < 20; ++i) {
      burst += "set pipe" + std::to_string(i) + " 0 0 2\r\nv" + std::to_string(i % 10) +
               "\r\n";
      burst += "get pipe" + std::to_string(i) + "\r\n";
    }
    (void)co_await s->send(val(burst));

    std::string text;
    std::vector<std::byte> buf(16 * 1024);
    // 20x (STORED + VALUE..END) expected, in exactly this order.
    std::string expected;
    for (int i = 0; i < 20; ++i) {
      expected += "STORED\r\nVALUE pipe" + std::to_string(i) + " 0 2\r\nv" +
                  std::to_string(i % 10) + "\r\nEND\r\n";
    }
    while (text.size() < expected.size()) {
      auto n = co_await s->recv(buf);
      EXPECT_TRUE(n.ok());
      if (!n.ok() || *n == 0) break;
      text.append(reinterpret_cast<const char*>(buf.data()), *n);
    }
    EXPECT_EQ(text, expected);
    fin = true;
  }(bed, done));
  EXPECT_TRUE(done);
}

TEST(Robustness, ServerEvictsUnderMemoryPressureViaClient) {
  TestBed bed;
  ServerConfig small;
  small.port = 11311;  // own port; handlers on the runtime are overwritten,
                       // which is fine because only `tiny` is used below
  small.store.slabs.memory_limit = 2 * 1024 * 1024;
  Server tiny{bed.sched, bed.server_host, small};
  tiny.attach_ucr_frontend(bed.server_ucr);
  bool done = false;
  bed.run([](TestBed& tb, Server& tiny2, bool& fin) -> Task<> {
    Client client{tb.sched, tb.client_host};
    client.add_server_ucr(tb.client_ucr, tb.server_ucr.addr(), tiny2.config().port);
    EXPECT_TRUE((co_await client.connect_all()).ok());
    std::vector<std::byte> value(10 * 1024, std::byte{9});
    tb.client_ucr.register_region(value);
    for (int i = 0; i < 400; ++i) {  // 4 MB into a 2 MB cache
      EXPECT_TRUE((co_await client.set("bulk:" + std::to_string(i), value)).ok());
    }
    EXPECT_GT(tiny2.store().stats().evictions, 0u);
    EXPECT_LE(tiny2.store().slabs().memory_allocated(), std::size_t{2 * 1024 * 1024});
    // Newest keys survived; a get on them works.
    auto got = co_await client.get("bulk:399");
    EXPECT_TRUE(got.ok());
    fin = true;
  }(bed, tiny, done));
  EXPECT_TRUE(done);
}

TEST(Distribution, KetamaBalancesAndMinimallyRemaps) {
  KetamaContinuum continuum;
  std::vector<std::string> servers;
  for (int i = 0; i < 8; ++i) servers.push_back("mc" + std::to_string(i) + ":11211");
  continuum.rebuild(servers);
  EXPECT_EQ(continuum.point_count(), 8u * 160u);

  // Balance: every server gets a reasonable share of 8000 keys.
  std::vector<int> load(8, 0);
  std::vector<std::size_t> before(8000);
  for (int i = 0; i < 8000; ++i) {
    before[i] = continuum.lookup("object:" + std::to_string(i));
    load[before[i]]++;
  }
  for (int s = 0; s < 8; ++s) {
    EXPECT_GT(load[s], 8000 / 8 / 3) << "server " << s;
    EXPECT_LT(load[s], 8000 / 8 * 3) << "server " << s;
  }

  // Minimal remapping: drop one server; only its keys (~1/8) move.
  servers.pop_back();
  continuum.rebuild(servers);
  int moved = 0;
  for (int i = 0; i < 8000; ++i) {
    const std::size_t now = continuum.lookup("object:" + std::to_string(i));
    if (before[i] != 7) {
      EXPECT_EQ(now, before[i]) << "key of a surviving server must not move";
    } else if (now != before[i]) {
      ++moved;
    }
  }
  EXPECT_EQ(moved, load[7]);  // exactly the dead server's keys moved
}

TEST(Distribution, ClientUsesKetamaWhenConfigured) {
  sim::Scheduler sched;
  sim::Host host{sched, 0, "client", 8};
  ClientBehavior behavior;
  behavior.distribution = Distribution::ketama;
  Client client{sched, host, behavior};
  // Register three fake socket servers (no traffic sent).
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sock::NetStack stack{sched, fabric, host, sock::sdp_ib()};
  for (int i = 0; i < 3; ++i) client.add_server_socket(stack, 100 + i, 11211);

  // Deterministic, in-range, and consistent.
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::size_t a = client.server_index(key);
    EXPECT_LT(a, 3u);
    EXPECT_EQ(a, client.server_index(key));
  }
  // Uses the continuum, not modulo: the two must disagree somewhere.
  ClientBehavior mod_behavior;
  Client mod_client{sched, host, mod_behavior};
  for (int i = 0; i < 3; ++i) mod_client.add_server_socket(stack, 100 + i, 11211);
  int differs = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    differs += client.server_index(key) != mod_client.server_index(key);
  }
  EXPECT_GT(differs, 0);
}

TEST(Stress, ManyConcurrentClientsConvergeToReferenceState) {
  // 8 clients hammer one server concurrently over UCR with randomized
  // set/get/del/incr streams on per-client key spaces; afterwards the
  // server's visible state must equal a per-client reference model, and
  // every in-flight read must have returned a value the model once held.
  core::TestBedConfig config;  // reuse the core facade for the fan-out
  config.cluster = core::ClusterKind::cluster_b;
  config.transport = core::TransportKind::ucr_verbs;
  config.num_clients = 8;
  core::TestBed bed(config);

  struct ClientModel {
    std::map<std::string, std::string> kv;
    bool ok = false;
  };
  std::vector<ClientModel> models(8);

  for (std::size_t c = 0; c < 8; ++c) {
    bed.scheduler().spawn([](core::TestBed& tb, std::size_t cc, ClientModel& model) -> Task<> {
      Client& client = tb.client(cc);
      EXPECT_TRUE((co_await client.connect_all()).ok());
      Rng rng(7000 + cc);
      for (int i = 0; i < 400; ++i) {
        const std::string key =
            "c" + std::to_string(cc) + ":k" + std::to_string(rng.below(30));
        switch (rng.below(4)) {
          case 0: {
            const std::string value = rng.alnum(rng.between(1, 900));
            EXPECT_TRUE((co_await client.set(key, val(value))).ok());
            model.kv[key] = value;
            break;
          }
          case 1: {
            auto got = co_await client.get(key);
            auto it = model.kv.find(key);
            if (it == model.kv.end()) {
              EXPECT_FALSE(got.ok()) << key;
            } else {
              EXPECT_TRUE(got.ok()) << key;
              if (got.ok()) {
                EXPECT_EQ(str(got->data), it->second);
              }
            }
            break;
          }
          case 2: {
            auto st = co_await client.del(key);
            EXPECT_EQ(st.ok(), model.kv.erase(key) > 0) << key;
            break;
          }
          case 3: {
            auto st = co_await client.append(key, val("+"));
            if (model.kv.count(key)) {
              EXPECT_TRUE(st.ok());
              model.kv[key] += "+";
            } else {
              EXPECT_EQ(st.error(), Errc::not_stored);
            }
            break;
          }
        }
      }
      // Final audit: every modeled key readable with exact bytes.
      for (const auto& [key, value] : model.kv) {
        auto got = co_await client.get(key);
        EXPECT_TRUE(got.ok()) << key;
        if (got.ok()) {
          EXPECT_EQ(str(got->data), value);
        }
      }
      model.ok = true;
    }(bed, c, models[c]));
  }
  bed.scheduler().run();
  std::size_t total_keys = 0;
  for (const auto& model : models) {
    EXPECT_TRUE(model.ok);
    total_keys += model.kv.size();
  }
  EXPECT_EQ(bed.server().store().item_count(), total_keys);
}

TEST(EndToEnd, RandomizedWorkloadBothTransportsAgree) {
  // Property test: run the same random op sequence over UCR and sockets
  // against separate servers; both must produce identical results.
  struct Run {
    std::vector<std::string> log;
  };
  auto run_workload = [](bool use_ucr) {
    TestBed bed;
    auto client = use_ucr ? bed.make_ucr_client() : bed.make_sock_client();
    auto log = std::make_unique<Run>();
    bool done = false;
    bed.run([](Client& cli, Run& run, bool& fin) -> Task<> {
      EXPECT_TRUE((co_await cli.connect_all()).ok());
      Rng rng(1234);  // same seed for both transports
      for (int i = 0; i < 300; ++i) {
        const std::string key = "k" + std::to_string(rng.below(40));
        switch (rng.below(5)) {
          case 0: {
            const std::string value = rng.alnum(rng.between(1, 200));
            auto st = co_await cli.set(key, val(value));
            run.log.push_back("set:" + std::string(to_string(st.error())));
            break;
          }
          case 1: {
            auto got = co_await cli.get(key);
            run.log.push_back(got.ok() ? "get:" + str(got->data)
                                       : "get:" + std::string(to_string(got.error())));
            break;
          }
          case 2: {
            auto st = co_await cli.del(key);
            run.log.push_back("del:" + std::string(to_string(st.error())));
            break;
          }
          case 3: {
            auto st = co_await cli.add(key, val("A"));
            run.log.push_back("add:" + std::string(to_string(st.error())));
            break;
          }
          case 4: {
            auto st = co_await cli.append(key, val("+"));
            run.log.push_back("app:" + std::string(to_string(st.error())));
            break;
          }
        }
      }
      fin = true;
    }(*client, *log, done));
    EXPECT_TRUE(done);
    return std::move(log->log);
  };

  const auto ucr_log = run_workload(true);
  const auto sock_log = run_workload(false);
  ASSERT_EQ(ucr_log.size(), sock_log.size());
  for (std::size_t i = 0; i < ucr_log.size(); ++i) {
    EXPECT_EQ(ucr_log[i], sock_log[i]) << "divergence at op " << i;
  }
}

}  // namespace
}  // namespace rmc::mc
