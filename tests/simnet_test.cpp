// Unit tests for the discrete-event substrate: scheduler ordering, task
// composition, events, counters (incl. timeout races), channels, CPU
// occupancy, fabric timing, and the move-only function wrapper.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "simnet/channel.hpp"
#include "simnet/cpu.hpp"
#include "simnet/event.hpp"
#include "simnet/fabric.hpp"
#include "simnet/netparams.hpp"
#include "simnet/scheduler.hpp"
#include "simnet/task.hpp"
#include "simnet/unique_function.hpp"

namespace rmc::sim {
namespace {

using namespace rmc::literals;

// ---------------------------------------------------------- scheduler ----

TEST(Scheduler, EventsFireInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.call_at(30, [&] { order.push_back(3); });
  sched.call_at(10, [&] { order.push_back(1); });
  sched.call_at(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30u);
}

TEST(Scheduler, SameTimeFiresInInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sched.call_at(5, [&, i] { order.push_back(i); });
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, CallbacksCanScheduleMore) {
  Scheduler sched;
  int hits = 0;
  sched.call_at(1, [&] {
    ++hits;
    sched.call_in(1, [&] { ++hits; });
  });
  sched.run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(sched.now(), 2u);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int hits = 0;
  sched.call_at(10, [&] { ++hits; });
  sched.call_at(100, [&] { ++hits; });
  sched.run_until(50);
  EXPECT_EQ(hits, 1);
  sched.run();
  EXPECT_EQ(hits, 2);
}

TEST(Scheduler, EventsProcessedCounts) {
  Scheduler sched;
  for (int i = 0; i < 5; ++i) sched.call_at(i, [] {});
  sched.run();
  EXPECT_EQ(sched.events_processed(), 5u);
}

// --------------------------------------------------------------- task ----

Task<int> answer(Scheduler& sched) {
  co_await sched.delay(10);
  co_return 42;
}

Task<int> twice(Scheduler& sched) {
  const int a = co_await answer(sched);
  const int b = co_await answer(sched);
  co_return a + b;
}

TEST(Task, AwaitChainsAndReturnsValues) {
  Scheduler sched;
  int result = 0;
  sched.spawn([](Scheduler& s, int& out) -> Task<> {
    out = co_await twice(s);
  }(sched, result));
  sched.run();
  EXPECT_EQ(result, 84);
  EXPECT_EQ(sched.now(), 20u);
}

Task<int> thrower(Scheduler& sched) {
  co_await sched.delay(1);
  throw std::runtime_error("boom");
}

TEST(Task, ExceptionsPropagateAcrossCoAwait) {
  Scheduler sched;
  bool caught = false;
  sched.spawn([](Scheduler& s, bool& flag) -> Task<> {
    try {
      (void)co_await thrower(s);
    } catch (const std::runtime_error&) {
      flag = true;
    }
  }(sched, caught));
  sched.run();
  EXPECT_TRUE(caught);
}

TEST(Task, BlockedRootIsReclaimedAtTeardown) {
  // A root blocked forever must not leak (ASAN would flag it).
  auto sched = std::make_unique<Scheduler>();
  auto ch = std::make_unique<Channel<int>>(*sched);
  sched->spawn([](Channel<int>& c) -> Task<> {
    (void)co_await c.recv();  // never satisfied
  }(*ch));
  sched->run();
  sched.reset();  // must destroy the suspended frame
  SUCCEED();
}

TEST(Task, SpawnManyRootsAllRun) {
  Scheduler sched;
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    sched.spawn([](Scheduler& s, int& d, int delay) -> Task<> {
      co_await s.delay(static_cast<Time>(delay));
      ++d;
    }(sched, done, i));
  }
  sched.run();
  EXPECT_EQ(done, 100);
}

// -------------------------------------------------------------- event ----

TEST(Event, WakesAllWaiters) {
  Scheduler sched;
  Event ev(sched);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    sched.spawn([](Event& e, int& w) -> Task<> {
      co_await e.wait();
      ++w;
    }(ev, woken));
  }
  sched.call_at(100, [&] { ev.set(); });
  sched.run();
  EXPECT_EQ(woken, 3);
  EXPECT_EQ(sched.now(), 100u);
}

TEST(Event, WaitAfterSetIsImmediate) {
  Scheduler sched;
  Event ev(sched);
  ev.set();
  bool ran = false;
  sched.spawn([](Event& e, bool& f) -> Task<> {
    co_await e.wait();
    f = true;
  }(ev, ran));
  sched.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.now(), 0u);
}

// ------------------------------------------------------------ counter ----

TEST(Counter, WaitGeqFiresWhenThresholdReached) {
  Scheduler sched;
  Counter c(sched);
  Time fired_at = 0;
  sched.spawn([](Scheduler& s, Counter& cc, Time& t) -> Task<> {
    const bool ok = co_await cc.wait_geq(3);
    EXPECT_TRUE(ok);
    t = s.now();
  }(sched, c, fired_at));
  sched.call_at(10, [&] { c.add(); });
  sched.call_at(20, [&] { c.add(); });
  sched.call_at(30, [&] { c.add(); });
  sched.run();
  EXPECT_EQ(fired_at, 30u);
  EXPECT_EQ(c.value(), 3u);
}

TEST(Counter, AlreadySatisfiedWaitIsImmediate) {
  Scheduler sched;
  Counter c(sched);
  c.add(5);
  bool ok = false;
  sched.spawn([](Counter& cc, bool& out) -> Task<> {
    out = co_await cc.wait_geq(5);
  }(c, ok));
  sched.run();
  EXPECT_TRUE(ok);
}

TEST(Counter, TimeoutFiresWhenCounterStalls) {
  Scheduler sched;
  Counter c(sched);
  bool ok = true;
  Time fired_at = 0;
  sched.spawn([](Scheduler& s, Counter& cc, bool& out, Time& t) -> Task<> {
    out = co_await cc.wait_geq(1, 500);
    t = s.now();
  }(sched, c, ok, fired_at));
  sched.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(fired_at, 500u);
}

TEST(Counter, CounterBeatsTimeout) {
  Scheduler sched;
  Counter c(sched);
  bool ok = false;
  sched.spawn([](Counter& cc, bool& out) -> Task<> {
    out = co_await cc.wait_geq(1, 500);
  }(c, ok));
  sched.call_at(100, [&] { c.add(); });
  sched.run();  // the stale timeout at t=500 must be a no-op
  EXPECT_TRUE(ok);
  EXPECT_EQ(sched.now(), 500u);
}

TEST(Counter, SimultaneousAddAndTimeoutIsDeterministic) {
  // Both the add and the timeout fire at t=500. The add was enqueued at
  // test-setup time (seq 1); the waiter's timeout lambda is only enqueued
  // when the spawned task first runs at t=0 (seq 2). Same-time events fire
  // in sequence order, so the add deterministically wins.
  Scheduler sched;
  Counter c(sched);
  bool ok = false;
  sched.spawn([](Counter& cc, bool& out) -> Task<> {
    out = co_await cc.wait_geq(1, 500);
  }(c, ok));
  sched.call_at(500, [&] { c.add(); });
  sched.run();
  EXPECT_TRUE(ok);
}

TEST(Counter, MultipleWaitersDifferentThresholds) {
  Scheduler sched;
  Counter c(sched);
  std::vector<int> order;
  for (int threshold : {3, 1, 2}) {
    sched.spawn([](Counter& cc, std::vector<int>& ord, int th) -> Task<> {
      co_await cc.wait_geq(static_cast<std::uint64_t>(th));
      ord.push_back(th);
    }(c, order, threshold));
  }
  sched.call_at(10, [&] { c.add(); });
  sched.call_at(20, [&] { c.add(); });
  sched.call_at(30, [&] { c.add(); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Counter, BatchAddWakesAllEligible) {
  Scheduler sched;
  Counter c(sched);
  int woken = 0;
  for (int th = 1; th <= 5; ++th) {
    sched.spawn([](Counter& cc, int& w, int th2) -> Task<> {
      co_await cc.wait_geq(static_cast<std::uint64_t>(th2));
      ++w;
    }(c, woken, th));
  }
  sched.call_at(1, [&] { c.add(10); });
  sched.run();
  EXPECT_EQ(woken, 5);
}

// ------------------------------------------------------------ channel ----

TEST(Channel, FifoDelivery) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<int> got;
  sched.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      auto v = co_await c.recv();
      EXPECT_TRUE(v.has_value());
      if (v) out.push_back(*v);
    }
  }(ch, got));
  sched.call_at(10, [&] { ch.send(1); });
  sched.call_at(20, [&] {
    ch.send(2);
    ch.send(3);
  });
  sched.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, RecvBeforeSendSuspends) {
  Scheduler sched;
  Channel<std::string> ch(sched);
  Time got_at = 0;
  sched.spawn([](Scheduler& s, Channel<std::string>& c, Time& t) -> Task<> {
    auto v = co_await c.recv();
    EXPECT_EQ(*v, "hi");
    t = s.now();
  }(sched, ch, got_at));
  sched.call_at(77, [&] { ch.send("hi"); });
  sched.run();
  EXPECT_EQ(got_at, 77u);
}

TEST(Channel, CloseWakesWaitersWithNullopt) {
  Scheduler sched;
  Channel<int> ch(sched);
  bool closed_seen = false;
  sched.spawn([](Channel<int>& c, bool& f) -> Task<> {
    auto v = co_await c.recv();
    f = !v.has_value();
  }(ch, closed_seen));
  sched.call_at(5, [&] { ch.close(); });
  sched.run();
  EXPECT_TRUE(closed_seen);
}

TEST(Channel, DrainAfterCloseDeliversQueued) {
  Scheduler sched;
  Channel<int> ch(sched);
  ch.send(9);
  ch.close();
  std::vector<int> got;
  bool end_seen = false;
  sched.spawn([](Channel<int>& c, std::vector<int>& out, bool& end) -> Task<> {
    while (true) {
      auto v = co_await c.recv();
      if (!v) {
        end = true;
        co_return;
      }
      out.push_back(*v);
    }
  }(ch, got, end_seen));
  sched.run();
  EXPECT_EQ(got, std::vector<int>{9});
  EXPECT_TRUE(end_seen);
}

TEST(Channel, TryRecvNonBlocking) {
  Scheduler sched;
  Channel<int> ch(sched);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(4);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 4);
}

TEST(Channel, MoveOnlyPayloads) {
  Scheduler sched;
  Channel<std::unique_ptr<int>> ch(sched);
  ch.send(std::make_unique<int>(31));
  int got = 0;
  sched.spawn([](Channel<std::unique_ptr<int>>& c, int& out) -> Task<> {
    auto v = co_await c.recv();
    out = **v;
  }(ch, got));
  sched.run();
  EXPECT_EQ(got, 31);
}

TEST(Channel, TwoConsumersShareStream) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<int> a, b;
  auto consumer = [](Channel<int>& c, std::vector<int>& out) -> Task<> {
    while (true) {
      auto v = co_await c.recv();
      if (!v) co_return;
      out.push_back(*v);
    }
  };
  sched.spawn(consumer(ch, a));
  sched.spawn(consumer(ch, b));
  sched.call_at(1, [&] { ch.send(1); });
  sched.call_at(2, [&] { ch.send(2); });
  sched.call_at(3, [&] { ch.close(); });
  sched.run();
  EXPECT_EQ(a.size() + b.size(), 2u);
}

// ---------------------------------------------------------------- cpu ----

TEST(Cpu, SingleCoreSerializes) {
  Scheduler sched;
  CpuResource cpu(sched, 1);
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i) {
    sched.spawn([](Scheduler& s, CpuResource& c, std::vector<Time>& out) -> Task<> {
      co_await c.consume(100);
      out.push_back(s.now());
    }(sched, cpu, done));
  }
  sched.run();
  EXPECT_EQ(done, (std::vector<Time>{100, 200, 300}));
  EXPECT_EQ(cpu.busy_ns(), 300u);
}

TEST(Cpu, MultiCoreRunsInParallel) {
  Scheduler sched;
  CpuResource cpu(sched, 4);
  std::vector<Time> done;
  for (int i = 0; i < 4; ++i) {
    sched.spawn([](Scheduler& s, CpuResource& c, std::vector<Time>& out) -> Task<> {
      co_await c.consume(100);
      out.push_back(s.now());
    }(sched, cpu, done));
  }
  sched.run();
  for (Time t : done) EXPECT_EQ(t, 100u);
}

TEST(Cpu, ZeroCostIsFree) {
  Scheduler sched;
  CpuResource cpu(sched, 1);
  bool ran = false;
  sched.spawn([](CpuResource& c, bool& f) -> Task<> {
    co_await c.consume(0);
    f = true;
  }(cpu, ran));
  sched.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.now(), 0u);
}

TEST(Cpu, OversubscribedQueuesFairly) {
  Scheduler sched;
  CpuResource cpu(sched, 2);
  std::vector<Time> done;
  for (int i = 0; i < 6; ++i) {
    sched.spawn([](Scheduler& s, CpuResource& c, std::vector<Time>& out) -> Task<> {
      co_await c.consume(50);
      out.push_back(s.now());
    }(sched, cpu, done));
  }
  sched.run();
  // 6 jobs x 50ns over 2 cores -> completion waves at 50, 100, 150.
  EXPECT_EQ(done, (std::vector<Time>{50, 50, 100, 100, 150, 150}));
}

// ------------------------------------------------------------- fabric ----

struct TestPacket : Packet {
  int tag;
  TestPacket(NicAddr s, NicAddr d, std::uint64_t bytes, int t)
      : Packet(s, d, bytes), tag(t) {}
};

TEST(Fabric, DeliversWithLatencyAndBandwidth) {
  Scheduler sched;
  Host h0(sched, 0, "n0", 8), h1(sched, 1, "n1", 8);
  Fabric fabric(sched, LinkParams{.bandwidth_Bpns = 1.0, .wire_latency = 1000,
                                  .per_message_overhead_bytes = 0});
  Nic& a = fabric.add_nic(h0);
  Nic& b = fabric.add_nic(h1);

  Time delivered_at = 0;
  int tag = 0;
  sched.spawn([](Scheduler& s, Nic& nic, Time& t, int& tg) -> Task<> {
    auto p = co_await nic.inbox.recv();
    t = s.now();
    tg = static_cast<TestPacket&>(**p).tag;
  }(sched, b, delivered_at, tag));

  fabric.transmit(std::make_unique<TestPacket>(a.addr(), b.addr(), 4000, 7));
  sched.run();
  // 4000 B at 1 B/ns + 1000 ns wire = 5000 ns.
  EXPECT_EQ(delivered_at, 5000u);
  EXPECT_EQ(tag, 7);
  EXPECT_EQ(a.tx_messages(), 1u);
  EXPECT_EQ(b.rx_messages(), 1u);
}

TEST(Fabric, SenderSerializationQueuesBackToBack) {
  Scheduler sched;
  Host h0(sched, 0, "n0", 8), h1(sched, 1, "n1", 8);
  Fabric fabric(sched, LinkParams{.bandwidth_Bpns = 1.0, .wire_latency = 100,
                                  .per_message_overhead_bytes = 0});
  Nic& a = fabric.add_nic(h0);
  Nic& b = fabric.add_nic(h1);

  std::vector<Time> arrivals;
  sched.spawn([](Scheduler& s, Nic& nic, std::vector<Time>& out) -> Task<> {
    for (int i = 0; i < 2; ++i) {
      (void)co_await nic.inbox.recv();
      out.push_back(s.now());
    }
  }(sched, b, arrivals));

  fabric.transmit(std::make_unique<TestPacket>(a.addr(), b.addr(), 1000, 0));
  fabric.transmit(std::make_unique<TestPacket>(a.addr(), b.addr(), 1000, 1));
  sched.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 1100u);  // 1000 tx + 100 wire
  EXPECT_EQ(arrivals[1], 2100u);  // second waits for the first to serialize
}

TEST(Fabric, ReceiverCongestionFromManySenders) {
  Scheduler sched;
  Host server_host(sched, 0, "server", 8);
  Fabric fabric(sched, LinkParams{.bandwidth_Bpns = 1.0, .wire_latency = 100,
                                  .per_message_overhead_bytes = 0});
  Nic& server = fabric.add_nic(server_host);

  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<Time> arrivals;
  sched.spawn([](Scheduler& s, Nic& nic, std::vector<Time>& out) -> Task<> {
    for (int i = 0; i < 4; ++i) {
      (void)co_await nic.inbox.recv();
      out.push_back(s.now());
    }
  }(sched, server, arrivals));

  for (int i = 0; i < 4; ++i) {
    hosts.push_back(std::make_unique<Host>(sched, i + 1, "c", 8));
    Nic& cnic = fabric.add_nic(*hosts.back());
    fabric.transmit(std::make_unique<TestPacket>(cnic.addr(), server.addr(), 1000, i));
  }
  sched.run();
  ASSERT_EQ(arrivals.size(), 4u);
  // All four senders transmit concurrently, but the server's receive link
  // serializes: deliveries are 1000 ns apart.
  EXPECT_EQ(arrivals[0], 1100u);
  EXPECT_EQ(arrivals[1], 2100u);
  EXPECT_EQ(arrivals[2], 3100u);
  EXPECT_EQ(arrivals[3], 4100u);
}

TEST(Fabric, LoopbackSkipsWire) {
  Scheduler sched;
  Host h(sched, 0, "n0", 8);
  Fabric fabric(sched, one_gige_link());
  Nic& a = fabric.add_nic(h);
  Time at = 0;
  sched.spawn([](Scheduler& s, Nic& nic, Time& t) -> Task<> {
    (void)co_await nic.inbox.recv();
    t = s.now();
  }(sched, a, at));
  fabric.transmit(std::make_unique<TestPacket>(a.addr(), a.addr(), 100, 0));
  sched.run();
  EXPECT_LT(at, one_gige_link().wire_latency);
}

TEST(Fabric, PresetsAreOrderedByBandwidth) {
  EXPECT_GT(ib_qdr_link().bandwidth_Bpns, ib_ddr_link().bandwidth_Bpns);
  EXPECT_GT(ib_ddr_link().bandwidth_Bpns, ten_gige_link().bandwidth_Bpns);
  EXPECT_GT(ten_gige_link().bandwidth_Bpns, one_gige_link().bandwidth_Bpns);
}

// ---------------------------------------------------- unique_function ----

TEST(UniqueFunction, InvokesInlineClosure) {
  int x = 0;
  UniqueFunction f([&x] { x = 5; });
  f();
  EXPECT_EQ(x, 5);
}

TEST(UniqueFunction, OwnsMoveOnlyCapture) {
  auto p = std::make_unique<int>(11);
  int got = 0;
  UniqueFunction f([p = std::move(p), &got] { got = *p; });
  f();
  EXPECT_EQ(got, 11);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  int calls = 0;
  UniqueFunction f([&calls] { ++calls; });
  UniqueFunction g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(calls, 1);
}

TEST(UniqueFunction, LargeClosureGoesToHeap) {
  std::array<char, 256> big{};
  big[0] = 'a';
  char got = 0;
  UniqueFunction f([big, &got] { got = big[0]; });
  UniqueFunction g(std::move(f));
  g();
  EXPECT_EQ(got, 'a');
}

TEST(UniqueFunction, DestroysCaptureExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  {
    UniqueFunction f([counter] { (void)counter; });
    EXPECT_EQ(counter.use_count(), 2);
    UniqueFunction g(std::move(f));
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

}  // namespace
}  // namespace rmc::sim
