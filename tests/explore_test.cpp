// Schedule-exploration tests (DESIGN.md §17): the TieBreaker hook, the
// ScheduleExplorer modes, and two exhaustively model-checked protocols —
// the RFP request-ring seqlock (client claim/seal/abandon vs server
// execute/release/re-bootstrap) and the one-sided index seqlock (writer
// republish vs reader two-step snapshot). Every interleaving of the
// bounded small models must keep the protocol invariants: epochs move
// monotonically within a ring generation, busy-slot accounting stays
// consistent, and no schedule ever surfaces a torn value as verified.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <set>
#include <tuple>
#include <vector>

#include "core/fleetbed.hpp"
#include "core/workload.hpp"
#include "onesided/layout.hpp"
#include "rfp/layout.hpp"
#include "simnet/explore.hpp"
#include "simnet/scheduler.hpp"

namespace rmc {
namespace {

// ---------------------------------------------------------------- basics

/// Three events inserted at the same timestamp; returns dispatch order.
std::vector<int> run_three(sim::TieBreaker* tb) {
  sim::Scheduler sched;
  sched.set_tie_breaker(tb);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sched.call_at(5, [&order, i] { order.push_back(i); });
  }
  sched.run();
  return order;
}

TEST(ExploreTest, InsertionModeIsByteIdenticalToNoTieBreaker) {
  const std::vector<int> bare = run_three(nullptr);
  sim::ScheduleExplorer insertion;  // default = insertion mode
  const std::vector<int> hooked = run_three(&insertion);
  EXPECT_EQ(bare, hooked);
  EXPECT_EQ(bare, (std::vector<int>{0, 1, 2}));  // the pinned guarantee
}

TEST(ExploreTest, PermutationSameSeedSameSchedule) {
  auto run_seeded = [](std::uint64_t seed) {
    auto ex = sim::ScheduleExplorer::permutation(seed);
    ex.begin_run();
    const std::vector<int> order = run_three(&ex);
    return std::make_pair(order, ex.trace());
  };
  const auto [order_a, trace_a] = run_seeded(42);
  const auto [order_b, trace_b] = run_seeded(42);
  EXPECT_EQ(order_a, order_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_FALSE(trace_a.empty());  // ties existed, decisions were recorded
}

TEST(ExploreTest, ReplayReproducesARecordedSchedule) {
  auto ex = sim::ScheduleExplorer::permutation(7);
  ex.begin_run();
  const std::vector<int> recorded = run_three(&ex);

  auto replay = sim::ScheduleExplorer::replay(ex.trace());
  replay.begin_run();
  const std::vector<int> replayed = run_three(&replay);
  EXPECT_EQ(recorded, replayed);
}

TEST(ExploreTest, ExhaustiveEnumeratesEveryPermutation) {
  auto ex = sim::ScheduleExplorer::exhaustive();
  std::set<std::vector<int>> seen;
  const sim::ExploreReport report = ex.explore([&](sim::ScheduleExplorer& e) {
    seen.insert(run_three(&e));
  });
  EXPECT_TRUE(report.exhausted);
  EXPECT_FALSE(report.truncated_runs);
  EXPECT_EQ(report.schedules, 6u);  // 3! orders of three tied events
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(report.failed_invariant.empty());
}

TEST(ExploreTest, InvariantCounterexampleIsReplayable) {
  auto ex = sim::ScheduleExplorer::exhaustive();
  std::vector<int>* current = nullptr;
  // Deliberately false on some schedules: event 2 must not run first.
  ex.add_invariant("no-2-first", [&current] {
    return current == nullptr || current->empty() || (*current)[0] != 2;
  });
  const sim::ExploreReport report = ex.explore([&](sim::ScheduleExplorer& e) {
    sim::Scheduler sched;
    sched.set_tie_breaker(&e);
    std::vector<int> order;
    current = &order;
    for (int i = 0; i < 3; ++i) {
      sched.call_at(5, [&order, i] { order.push_back(i); });
    }
    sched.run();
    current = nullptr;
  });
  ASSERT_EQ(report.failed_invariant, "no-2-first");
  ASSERT_FALSE(report.failing_trace.empty());

  // The recorded trace must reproduce the violating schedule exactly.
  auto replay = sim::ScheduleExplorer::replay(report.failing_trace);
  replay.begin_run();
  const std::vector<int> order = run_three(&replay);
  EXPECT_EQ(order[0], 2);
}

// --------------------------------------------- RFP request-ring small model
//
// Two ring slots, the real seal_frame/read_frame codec, and a client whose
// slot writes land as two racing memcpys (RDMA writes are not atomic).
// The client claims+seals op A, claims+abandons a half-written op B', then
// re-bootstraps the ring (new generation) and runs op B; the server sweeps
// on doorbells that race every client step. Whether op A is executed or
// lost to the re-bootstrap is schedule-dependent — the protocol invariants
// below must hold either way, on every interleaving.

struct RfpModel {
  static constexpr std::uint32_t kSlotSize = 64;
  static constexpr std::uint32_t kBodyLen = 16;

  explicit RfpModel(sim::Scheduler& s) : sched(s) {}

  sim::Scheduler& sched;
  std::array<std::array<std::byte, kSlotSize>, 2> ring{};
  std::array<std::uint32_t, 2> expected_seq{1, 1};
  std::array<std::byte, kSlotSize> staged{};

  int generation = 1;
  int busy = 0;
  std::array<bool, 2> claimed{false, false};

  int consumed = 0;
  bool a_consumed = false;
  bool b_consumed = false;
  int torn_seen = 0;
  bool bad_consume = false;  // server executed a mismatched body
  bool accounting_ok = true;
  bool epochs_monotonic = true;

  // Epoch-monotonicity bookkeeping (within one ring generation).
  std::array<std::uint32_t, 2> prev_seq{1, 1};
  int prev_gen = 1;

  std::span<std::byte> slot(std::uint32_t i) { return {ring[i].data(), kSlotSize}; }

  void stage(std::uint32_t seq, std::byte tag) {
    staged = {};
    auto body = rfp::frame_body(std::span<std::byte>(staged));
    std::fill(body.begin(), body.begin() + kBodyLen, tag);
    rfp::seal_frame(std::span<std::byte>(staged), seq, kBodyLen);
  }
  void copy_first_half(std::uint32_t i) {
    std::memcpy(ring[i].data(), staged.data(), kSlotSize / 2);
  }
  void copy_second_half(std::uint32_t i) {
    std::memcpy(ring[i].data() + kSlotSize / 2, staged.data() + kSlotSize / 2,
                kSlotSize / 2);
  }

  void claim(std::uint32_t i) {
    claimed[i] = true;
    ++busy;
  }

  void rebootstrap() {
    for (auto& s : ring) s = {};
    expected_seq = {1, 1};
    ++generation;
    busy = 0;
    claimed = {false, false};
  }

  void sweep() {
    for (std::uint32_t i = 0; i < 2; ++i) {
      std::span<const std::byte> body;
      switch (rfp::read_frame(slot(i), expected_seq[i], body)) {
        case rfp::FrameState::ready: {
          // Execute: the body must be exactly what some seal produced.
          if (body.size() != kBodyLen ||
              !std::all_of(body.begin(), body.end(),
                           [&](std::byte b) { return b == body[0]; })) {
            bad_consume = true;
          }
          ++consumed;
          if (body[0] == std::byte{'A'}) a_consumed = true;
          if (body[0] == std::byte{'B'}) b_consumed = true;
          expected_seq[i] += 1;  // release_slot: the server's epoch advance
          if (claimed[i]) {
            claimed[i] = false;
            --busy;  // response delivery frees the client's slot
          }
          break;
        }
        case rfp::FrameState::torn:
          ++torn_seen;  // a write still landing; never executed
          break;
        case rfp::FrameState::empty:
          break;
      }
    }
  }

  void check_invariants() {
    const int claimed_count =
        static_cast<int>(claimed[0]) + static_cast<int>(claimed[1]);
    if (busy != claimed_count || busy < 0 || busy > 2) accounting_ok = false;
    if (generation == prev_gen) {
      for (std::uint32_t i = 0; i < 2; ++i) {
        if (expected_seq[i] < prev_seq[i]) epochs_monotonic = false;
      }
    }
    prev_gen = generation;
    prev_seq = expected_seq;
  }

  void doorbell() {
    sched.call_at(sched.now(), [this] { sweep(); });
  }

  void step(int k) {
    switch (k) {
      case 0:  // claim slot 0, first half of op A lands
        claim(0);
        stage(1, std::byte{'A'});
        copy_first_half(0);
        break;
      case 1:  // second half lands: op A sealed
        copy_second_half(0);
        doorbell();
        break;
      case 2:  // claim slot 1, half-write, abandon (client gives up mid-op)
        claim(1);
        stage(1, std::byte{'X'});
        copy_first_half(1);
        break;
      case 3:  // re-bootstrap: fresh ring generation races pending sweeps
        rebootstrap();
        doorbell();
        break;
      case 4:  // claim slot 0 again in the new generation, first half of B
        claim(0);
        stage(1, std::byte{'B'});
        copy_first_half(0);
        break;
      case 5:  // op B sealed; final doorbell drains it
        copy_second_half(0);
        doorbell();
        break;
    }
    if (k < 5) {
      sched.call_at(sched.now(), [this, k] { step(k + 1); });
    }
  }
};

TEST(ExploreTest, RfpSmallModelHoldsOnEveryInterleaving) {
  auto ex = sim::ScheduleExplorer::exhaustive();
  RfpModel* model = nullptr;
  ex.add_invariant("rfp-busy-slot-accounting", [&model] {
    if (model == nullptr) return true;
    model->check_invariants();
    return model->accounting_ok;
  });
  ex.add_invariant("rfp-epoch-monotonic",
                   [&model] { return model == nullptr || model->epochs_monotonic; });
  ex.add_invariant("rfp-no-torn-execution",
                   [&model] { return model == nullptr || !model->bad_consume; });

  std::set<std::tuple<bool, bool, int>> outcomes;
  const sim::ExploreReport report = ex.explore([&](sim::ScheduleExplorer& e) {
    sim::Scheduler sched;
    sched.set_tie_breaker(&e);
    RfpModel m(sched);
    model = &m;
    sched.call_at(0, [&m] { m.step(0); });
    sched.run();
    // Op B is sealed after the re-bootstrap and a doorbell follows it, so
    // every schedule must execute it; op A may be lost to the re-bootstrap.
    EXPECT_TRUE(m.b_consumed) << "trace size " << e.trace().size();
    outcomes.insert({m.a_consumed, m.torn_seen > 0, m.consumed});
    model = nullptr;
  });

  EXPECT_TRUE(report.exhausted);
  EXPECT_FALSE(report.truncated_runs);
  EXPECT_GT(report.schedules, 1u);
  EXPECT_TRUE(report.failed_invariant.empty())
      << "failed: " << report.failed_invariant;
  // The explorer must actually reach distinct protocol outcomes (e.g. op A
  // executed on some schedules, discarded by the re-bootstrap on others).
  EXPECT_GE(outcomes.size(), 2u);
}

// ------------------------------------------- one-sided index small model
//
// One bucket entry + one arena record slot, the real BucketEntry /
// RecordHeader framing. The writer republishes the record twice (retract,
// two racing record memcpys, publish); the reader runs three two-step
// snapshot reads (entry, then record — separate RDMA reads in the real
// protocol). A read that passes every verification step must return a
// value byte-exact for its version; torn observations must verify false.

struct OnesidedModel {
  static constexpr std::size_t kValueLen = 24;
  static constexpr std::uint32_t kHash = 0x5eed;

  explicit OnesidedModel(sim::Scheduler& s) : sched(s) {
    record.resize(onesided::RecordHeader::framed_size(1, kValueLen));
    staged.resize(record.size());
  }

  sim::Scheduler& sched;
  onesided::BucketEntry entry{};   // the published index line
  std::vector<std::byte> record;   // the arena slot
  std::vector<std::byte> staged;   // writer's next record image

  int verified_reads = 0;
  int rejected_reads = 0;
  bool bad_value = false;  // verified read returned mismatched bytes

  static std::byte value_byte(std::uint32_t version) {
    return static_cast<std::byte>(0x40 + version / 2);
  }

  void stage_record(std::uint32_t version) {
    onesided::RecordHeader hdr;
    hdr.version_front = version;
    hdr.key_len = 1;
    hdr.value_len = kValueLen;
    std::vector<std::byte> value(kValueLen, value_byte(version));
    hdr.checksum = hdr.expected_checksum("k", value);
    std::memset(staged.data(), 0, staged.size());
    std::memcpy(staged.data(), &hdr, sizeof(hdr));
    staged[sizeof(hdr)] = std::byte{'k'};
    std::memcpy(staged.data() + sizeof(hdr) + 1, value.data(), kValueLen);
    std::memcpy(staged.data() + sizeof(hdr) + 1 + kValueLen, &version,
                sizeof(version));
  }

  // Writer steps for generation g (stable version 2*g).
  void writer_step(int g, int phase) {
    const auto version = static_cast<std::uint32_t>(2 * g);
    switch (phase) {
      case 0:  // retract: odd version marks the slot unstable
        entry.version = version - 1;
        entry.seal();
        break;
      case 1:  // first half of the record rewrite lands
        stage_record(version);
        std::memcpy(record.data(), staged.data(), record.size() / 2);
        break;
      case 2:  // second half lands
        std::memcpy(record.data() + record.size() / 2,
                    staged.data() + record.size() / 2,
                    record.size() - record.size() / 2);
        break;
      case 3:  // publish: even version, self-checked entry
        entry.tag = onesided::BucketEntry::make_tag(kHash, 1);
        entry.version = version;
        entry.arena_offset = 0;
        entry.record_len = static_cast<std::uint32_t>(record.size());
        entry.seal();
        break;
    }
    const int next = phase + 1;
    if (next < 4) {
      sched.call_at(sched.now(), [this, g, next] { writer_step(g, next); });
    } else if (g < 2) {
      sched.call_at(sched.now(), [this, g] { writer_step(g + 1, 0); });
    }
  }

  // Reader: snapshot the entry, yield (a separate RDMA read), snapshot the
  // record, then verify exactly like RemoteGetter.
  onesided::BucketEntry entry_snap{};
  void reader_step(int r, int phase) {
    if (phase == 0) {
      entry_snap = entry;  // RDMA read of the bucket line
      sched.call_at(sched.now(), [this, r] { reader_step(r, 1); });
      return;
    }
    std::vector<std::byte> snap = record;  // RDMA read of the record
    verify(entry_snap, snap);
    if (r < 3) {
      sched.call_at(sched.now(), [this, r] { reader_step(r + 1, 0); });
    }
  }

  void verify(const onesided::BucketEntry& e, std::span<const std::byte> snap) {
    auto reject = [this] { ++rejected_reads; };
    if (!e.self_consistent() || !e.occupied() || (e.version & 1u) != 0 ||
        e.record_len != snap.size()) {
      return reject();
    }
    onesided::RecordHeader hdr;
    std::memcpy(&hdr, snap.data(), sizeof(hdr));
    if (hdr.version_front != e.version || hdr.key_len != 1 ||
        hdr.value_len != kValueLen) {
      return reject();
    }
    std::uint32_t back = 0;
    std::memcpy(&back, snap.data() + snap.size() - sizeof(back), sizeof(back));
    if (back != e.version) return reject();
    if (snap[sizeof(hdr)] != std::byte{'k'}) return reject();
    const auto value = snap.subspan(sizeof(hdr) + 1, kValueLen);
    if (hdr.checksum != hdr.expected_checksum("k", value)) return reject();
    // Verified: the value must be byte-exact for this version.
    ++verified_reads;
    if (!std::all_of(value.begin(), value.end(),
                     [&](std::byte b) { return b == value_byte(e.version); })) {
      bad_value = true;
    }
  }
};

TEST(ExploreTest, OnesidedWriterVsReaderNeverSurfacesTornValues) {
  auto ex = sim::ScheduleExplorer::exhaustive();
  OnesidedModel* model = nullptr;
  ex.add_invariant("onesided-no-torn-value",
                   [&model] { return model == nullptr || !model->bad_value; });

  int runs_with_verified = 0;
  int runs_with_rejected = 0;
  const sim::ExploreReport report = ex.explore([&](sim::ScheduleExplorer& e) {
    sim::Scheduler sched;
    sched.set_tie_breaker(&e);
    OnesidedModel m(sched);
    model = &m;
    sched.call_at(0, [&m] { m.writer_step(1, 0); });
    sched.call_at(0, [&m] { m.reader_step(1, 0); });
    sched.run();
    if (m.verified_reads > 0) ++runs_with_verified;
    if (m.rejected_reads > 0) ++runs_with_rejected;
    model = nullptr;
  });

  EXPECT_TRUE(report.exhausted);
  EXPECT_FALSE(report.truncated_runs);
  EXPECT_GT(report.schedules, 100u);  // C(14,6) interleavings of 8+6 steps
  EXPECT_TRUE(report.failed_invariant.empty())
      << "failed: " << report.failed_invariant;
  // Both outcomes must be reachable: clean verified reads on some
  // schedules, torn observations correctly rejected on others.
  EXPECT_GT(runs_with_verified, 0);
  EXPECT_GT(runs_with_rejected, 0);
}

// ------------------------------------------------------- fleet smoke test

TEST(ExploreTest, PermutationFleetSmokeHasZeroTornValues) {
  core::FleetBedConfig bed_config;
  bed_config.shards = 2;
  bed_config.clients = 8;
  bed_config.generators = 2;
  core::FleetBed bed(bed_config);

  // Permute every same-timestamp tie for the whole fleet run. Traces of a
  // multi-million-event run are useless — record off, the seed replays it.
  auto ex = sim::ScheduleExplorer::permutation(0xf1ee7);
  ex.set_trace_recording(false);
  bed.scheduler().set_tie_breaker(&ex);

  core::FleetWorkloadConfig workload;
  workload.key_space = 256;
  workload.ops_per_client = 25;
  workload.seed = 11;
  const core::FleetResult result = core::run_fleet(bed, workload);

  EXPECT_FALSE(result.connect_failed);
  EXPECT_GT(result.total_ops, 0u);
  EXPECT_EQ(result.value_mismatches, 0u);  // no torn values on any schedule
  EXPECT_EQ(result.failed_clients, 0u);
}

}  // namespace
}  // namespace rmc
