// Unit tests for src/common: hashing (with RFC vectors), histograms, RNG
// determinism, tables, units.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>
#include <string>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/md5.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace rmc {
namespace {

using namespace rmc::literals;

// ---------------------------------------------------------------- MD5 ----

// RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(md5("").hex(), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5("a").hex(), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5("abc").hex(), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5("message digest").hex(), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5("abcdefghijklmnopqrstuvwxyz").hex(), "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(md5("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789").hex(),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(
      md5("12345678901234567890123456789012345678901234567890123456789012345678901234567890")
          .hex(),
      "57edf4a22be3c955ac49da2e2107b67a");
}

// Exercise the one-block/two-block padding boundary (55, 56, 63, 64, 65
// byte inputs hit every branch of the tail logic).
TEST(Md5, PaddingBoundaries) {
  std::set<std::string> digests;
  for (std::size_t n : {0u, 1u, 54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u, 129u}) {
    std::string input(n, 'x');
    auto d = md5(input);
    EXPECT_EQ(d.hex().size(), 32u);
    digests.insert(d.hex());
  }
  // All distinct inputs must give distinct digests.
  EXPECT_EQ(digests.size(), 13u);
}

TEST(Md5, DigestEquality) {
  EXPECT_EQ(md5("hello"), md5("hello"));
  EXPECT_NE(md5("hello"), md5("hellp"));
}

// --------------------------------------------------------------- hash ----

TEST(Hash, OneAtATimeMatchesKnownValues) {
  // Jenkins OAAT of "a" computed by the reference implementation.
  EXPECT_EQ(hash_one_at_a_time(""), 0u);
  EXPECT_NE(hash_one_at_a_time("a"), hash_one_at_a_time("b"));
  EXPECT_EQ(hash_one_at_a_time("key"), hash_one_at_a_time("key"));
}

TEST(Hash, Fnv1aKnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(hash_fnv1a_32(""), 0x811c9dc5u);
  EXPECT_EQ(hash_fnv1a_32("a"), 0xe40c292cu);
  EXPECT_EQ(hash_fnv1a_32("foobar"), 0xbf9cf968u);
  EXPECT_EQ(hash_fnv1a_64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(hash_fnv1a_64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(hash_fnv1a_64("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, Crc32KnownVector) {
  EXPECT_EQ(hash_crc32("123456789"), 0xcbf43926u);
}

TEST(Hash, DispatchCoversAllKinds) {
  for (HashKind kind : {HashKind::default_jenkins, HashKind::fnv1a_32, HashKind::fnv1a_64,
                        HashKind::crc, HashKind::md5}) {
    // Sanity: same key hashes equal, different keys usually differ.
    EXPECT_EQ(hash_key(kind, "alpha"), hash_key(kind, "alpha"));
  }
}

// Distribution property: hashing many distinct keys into 8 server buckets
// should not leave any bucket nearly empty (client-side server selection).
TEST(Hash, ServerSelectionIsRoughlyUniform) {
  constexpr int kServers = 8;
  constexpr int kKeys = 8000;
  std::map<std::uint32_t, int> load;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "user:" + std::to_string(i) + ":profile";
    load[hash_key(HashKind::default_jenkins, key) % kServers]++;
  }
  ASSERT_EQ(load.size(), kServers);
  for (const auto& [server, count] : load) {
    EXPECT_GT(count, kKeys / kServers / 2) << "server " << server;
    EXPECT_LT(count, kKeys / kServers * 2) << "server " << server;
  }
}

// ---------------------------------------------------------------- rng ----

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(5);
  Rng child = parent.fork();
  EXPECT_NE(parent(), child());
}

TEST(Rng, AlnumProducesRequestedLength) {
  Rng rng(1);
  EXPECT_EQ(rng.alnum(16).size(), 16u);
  EXPECT_EQ(rng.alnum(0).size(), 0u);
}

// ---------------------------------------------------------- histogram ----

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
}

TEST(Histogram, ExactForSmallValues) {
  LatencyHistogram h;
  for (std::uint64_t v : {5u, 5u, 5u, 10u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 10u);
  EXPECT_EQ(h.percentile(0.5), 5u);
  EXPECT_EQ(h.percentile(1.0), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 6.25);
}

TEST(Histogram, PercentileWithinRelativeError) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  // Median of 1..100000 is 50000; log bucketing guarantees ~1.6% error.
  const auto p50 = static_cast<double>(h.percentile(0.5));
  EXPECT_NEAR(p50, 50000.0, 50000.0 * 0.02);
  const auto p99 = static_cast<double>(h.percentile(0.99));
  EXPECT_NEAR(p99, 99000.0, 99000.0 * 0.02);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, combined;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    auto v = rng.below(1000000);
    (i % 2 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.percentile(0.5), combined.percentile(0.5));
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
}

TEST(Histogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record(123);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, LargeValuesDoNotOverflowBuckets) {
  LatencyHistogram h;
  h.record(~0ull);
  h.record(1ull << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ull);
}

// Regression: q<=0 must return the exact recorded minimum, not the upper
// bound of the minimum's bucket (which for e.g. 1000 is 1008).
TEST(Histogram, PercentileZeroIsExactMin) {
  LatencyHistogram h;
  h.record(1000);
  h.record(5000);
  EXPECT_EQ(h.percentile(0.0), 1000u);
  EXPECT_EQ(h.percentile(-0.5), 1000u);
  EXPECT_EQ(h.min(), 1000u);
}

// Regression: q>1 and NaN clamp instead of scanning past the last bucket.
TEST(Histogram, PercentileOutOfRangeClamps) {
  LatencyHistogram h;
  for (std::uint64_t v : {7u, 70u, 700u}) h.record(v);
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
  EXPECT_EQ(h.percentile(std::numeric_limits<double>::quiet_NaN()), h.min());
  EXPECT_EQ(h.percentile(std::numeric_limits<double>::infinity()), h.percentile(1.0));
}

// Regression: the running sum saturates on record() and merge() instead of
// wrapping, so mean() stays at the ceiling rather than going tiny.
TEST(Histogram, SumSaturatesInsteadOfWrapping) {
  LatencyHistogram a;
  a.record(~0ull);
  a.record(~0ull);  // sum would wrap to ~0; must pin at 2^64-1
  EXPECT_GE(a.mean(), static_cast<double>(~0ull) / 2.1);

  LatencyHistogram b;
  b.record(~0ull);
  LatencyHistogram c;
  c.record(~0ull);
  b.merge(c);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_GE(b.mean(), static_cast<double>(~0ull) / 2.1);
}

// -------------------------------------------------------------- units ----

TEST(Units, Literals) {
  EXPECT_EQ(5_us, 5000u);
  EXPECT_EQ(2_ms, 2000000u);
  EXPECT_EQ(1_s, 1000000000u);
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_us(12000), 12.0);
  EXPECT_DOUBLE_EQ(to_sec(1500000000ull), 1.5);
}

TEST(Units, SizeLabels) {
  EXPECT_EQ(format_size_label(4), "4");
  EXPECT_EQ(format_size_label(1024), "1K");
  EXPECT_EQ(format_size_label(512 * 1024), "512K");
  EXPECT_EQ(format_size_label(2 * 1024 * 1024), "2M");
  EXPECT_EQ(format_size_label(1500), "1500");
}

// -------------------------------------------------------------- error ----

TEST(Error, ResultHoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(Error, ResultHoldsError) {
  Result<int> r(Errc::not_found);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errc::not_found);
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(Error, StatusDefaultsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status bad(Errc::timed_out);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(to_string(bad.error()), "timed_out");
}

TEST(Error, AllCodesHaveNames) {
  for (auto e : {Errc::ok, Errc::timed_out, Errc::disconnected, Errc::refused,
                 Errc::no_resources, Errc::invalid_argument, Errc::not_found, Errc::exists,
                 Errc::not_stored, Errc::too_large, Errc::protocol_error}) {
    EXPECT_NE(to_string(e), "unknown");
  }
}

// -------------------------------------------------------------- table ----

TEST(Table, RendersAlignedColumns) {
  Table t("demo", {"size", "latency"});
  t.add_row({"4", "12.00"});
  t.add_row({"4096", "20.50"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("## demo"), std::string::npos);
  EXPECT_NE(s.find("size"), std::string::npos);
  EXPECT_NE(s.find("4096"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

TEST(Table, ShortRowsArePadded) {
  Table t("x", {"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.to_string());
}

}  // namespace
}  // namespace rmc
