// Tests for the byte-stream stacks: handshake, stream integrity across
// segmentation, EOF/close semantics, refused/timeout connects, CPU cost
// accounting, and cross-stack latency ordering.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "simnet/netparams.hpp"
#include "sockets/stack.hpp"

namespace rmc::sock {
namespace {

using namespace rmc::literals;
using sim::Scheduler;
using sim::Task;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::string string_of(std::span<const std::byte> v) {
  return {reinterpret_cast<const char*>(v.data()), v.size()};
}

struct TwoHosts {
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ten_gige_link()};
  sim::Host host_a{sched, 0, "client", 8};
  sim::Host host_b{sched, 1, "server", 8};
  NetStack stack_a{sched, fabric, host_a, toe_10ge()};
  NetStack stack_b{sched, fabric, host_b, toe_10ge()};
};

// ---------------------------------------------------------- handshake ----

TEST(Handshake, ConnectAcceptEstablishes) {
  TwoHosts t;
  Listener& listener = t.stack_b.listen(11211);

  Socket* server = nullptr;
  Socket* client = nullptr;
  t.sched.spawn([](Listener& l, Socket*& out) -> Task<> {
    out = co_await l.accept();
  }(listener, server));
  t.sched.spawn([](TwoHosts& tv, Socket*& out) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 11211);
    EXPECT_TRUE(r.ok());
    out = *r;
  }(t, client));
  t.sched.run();

  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(server->state(), SockState::established);
  EXPECT_EQ(client->state(), SockState::established);
}

TEST(Handshake, ConnectRefusedWithoutListener) {
  TwoHosts t;
  Errc err = Errc::ok;
  t.sched.spawn([](TwoHosts& tv, Errc& ec) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 4242);
    ec = r.error();
  }(t, err));
  t.sched.run();
  EXPECT_EQ(err, Errc::refused);
}

TEST(Handshake, MultipleClientsAccepted) {
  TwoHosts t;
  Listener& listener = t.stack_b.listen(11211);
  int accepted = 0;
  t.sched.spawn([](Listener& l, int& n) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      Socket* s = co_await l.accept();
      if (s) ++n;
    }
  }(listener, accepted));
  for (int i = 0; i < 3; ++i) {
    t.sched.spawn([](TwoHosts& tv) -> Task<> {
      auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 11211);
      EXPECT_TRUE(r.ok());
    }(t));
  }
  t.sched.run();
  EXPECT_EQ(accepted, 3);
}

// ------------------------------------------------------------- stream ----

Task<> echo_server(Listener& listener) {
  Socket* s = co_await listener.accept();
  std::vector<std::byte> buf(1 << 16);
  while (true) {
    auto n = co_await s->recv(buf);
    if (!n.ok() || *n == 0) co_return;
    auto sent = co_await s->send(std::span<const std::byte>(buf.data(), *n));
    if (!sent.ok()) co_return;
  }
}

TEST(Stream, RoundTripSmallMessage) {
  TwoHosts t;
  Listener& listener = t.stack_b.listen(1);
  t.sched.spawn(echo_server(listener));

  std::string got;
  t.sched.spawn([](TwoHosts& tv, std::string& res_out) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 1);
    Socket* s = *r;
    auto msg = bytes_of("hello, socket");
    (void)co_await s->send(msg);
    std::vector<std::byte> buf(64);
    auto st = co_await s->recv_exact(std::span(buf.data(), msg.size()));
    EXPECT_TRUE(st.ok());
    res_out = string_of(std::span<const std::byte>(buf.data(), msg.size()));
  }(t, got));
  t.sched.run();
  EXPECT_EQ(got, "hello, socket");
}

TEST(Stream, LargeTransferCrossesManySegments) {
  // 512 KiB >> MSS: segmentation + reassembly must preserve every byte.
  TwoHosts t;
  Listener& listener = t.stack_b.listen(1);
  t.sched.spawn(echo_server(listener));

  bool verified = false;
  t.sched.spawn([](TwoHosts& tv, bool& verified2) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 1);
    Socket* s = *r;
    std::vector<std::byte> out(512_KiB);
    Rng rng(11);
    for (auto& b : out) b = static_cast<std::byte>(rng() & 0xff);
    (void)co_await s->send(out);
    std::vector<std::byte> in(out.size());
    auto st = co_await s->recv_exact(in);
    EXPECT_TRUE(st.ok());
    verified2 = std::equal(out.begin(), out.end(), in.begin());
  }(t, verified));
  t.sched.run();
  EXPECT_TRUE(verified);
  EXPECT_GE(t.stack_a.segments_sent(), 512_KiB / toe_10ge().mss);
}

TEST(Stream, ByteStreamHasNoMessageBoundaries) {
  // Two sends coalesce into the receiver's buffer: the mismatch with
  // memcached's memory-object model that motivates the paper (§I).
  TwoHosts t;
  Listener& listener = t.stack_b.listen(1);
  Socket* server = nullptr;
  t.sched.spawn([](Listener& l, Socket*& out) -> Task<> {
    out = co_await l.accept();
  }(listener, server));

  t.sched.spawn([](TwoHosts& tv) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 1);
    (void)co_await (*r)->send(bytes_of("abc"));
    (void)co_await (*r)->send(bytes_of("def"));
  }(t));
  t.sched.run_until(1_ms);

  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->rx_available(), 6u);
  std::vector<std::byte> buf(6);
  bool done = false;
  t.sched.spawn([](Socket& s, std::vector<std::byte>& buf2, bool& fin) -> Task<> {
    auto st = co_await s.recv_exact(buf2);
    EXPECT_TRUE(st.ok());
    fin = true;
  }(*server, buf, done));
  t.sched.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(string_of(buf), "abcdef");
}

TEST(Stream, PartialRecvReturnsAvailableBytes) {
  TwoHosts t;
  Listener& listener = t.stack_b.listen(1);
  Socket* server = nullptr;
  t.sched.spawn([](Listener& l, Socket*& out) -> Task<> {
    out = co_await l.accept();
  }(listener, server));
  t.sched.spawn([](TwoHosts& tv) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 1);
    (void)co_await (*r)->send(bytes_of("xyz"));
  }(t));
  t.sched.run_until(1_ms);

  std::size_t got = 0;
  std::vector<std::byte> buf(100);
  t.sched.spawn([](Socket& s, std::vector<std::byte>& buf2, std::size_t& res_out) -> Task<> {
    auto n = co_await s.recv(buf2);
    res_out = n.value_or(0);
  }(*server, buf, got));
  t.sched.run();
  EXPECT_EQ(got, 3u);  // returns what is there, not the full 100
}

// ---------------------------------------------------------- lifecycle ----

TEST(Lifecycle, CloseDeliversEofToPeer) {
  TwoHosts t;
  Listener& listener = t.stack_b.listen(1);
  Socket* server = nullptr;
  t.sched.spawn([](Listener& l, Socket*& out) -> Task<> {
    out = co_await l.accept();
  }(listener, server));
  t.sched.spawn([](TwoHosts& tv) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 1);
    (*r)->close();
  }(t));
  t.sched.run_until(1_ms);

  ASSERT_NE(server, nullptr);
  std::size_t n = 99;
  std::vector<std::byte> buf(8);
  t.sched.spawn([](Socket& s, std::vector<std::byte>& buf2, std::size_t& n2) -> Task<> {
    auto r = co_await s.recv(buf2);
    n2 = r.value_or(99);
  }(*server, buf, n));
  t.sched.run();
  EXPECT_EQ(n, 0u);  // orderly EOF
}

TEST(Lifecycle, SendAfterCloseFails) {
  TwoHosts t;
  Listener& listener = t.stack_b.listen(1);
  t.sched.spawn([](Listener& l) -> Task<> { (void)co_await l.accept(); }(listener));
  Errc err = Errc::ok;
  t.sched.spawn([](TwoHosts& tv, Errc& ec) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 1);
    (*r)->close();
    auto msg = bytes_of("late");
    auto res = co_await (*r)->send(msg);
    ec = res.error();
  }(t, err));
  t.sched.run();
  EXPECT_EQ(err, Errc::disconnected);
}

TEST(Lifecycle, CloseWakesBlockedReader) {
  TwoHosts t;
  Listener& listener = t.stack_b.listen(1);
  t.sched.spawn([](Listener& l) -> Task<> { (void)co_await l.accept(); }(listener));
  Errc err = Errc::ok;
  t.sched.spawn([](TwoHosts& tv, Errc& ec) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 1);
    Socket* s = *r;
    tv.sched.call_at(tv.sched.now() + 10_us, [s] { s->close(); });
    std::vector<std::byte> buf(8);
    auto res = co_await s->recv(buf);
    ec = res.ok() ? Errc::ok : res.error();
  }(t, err));
  t.sched.run();
  EXPECT_EQ(err, Errc::disconnected);
}

TEST(Lifecycle, EofMidRecvExactIsProtocolError) {
  TwoHosts t;
  Listener& listener = t.stack_b.listen(1);
  Socket* server = nullptr;
  t.sched.spawn([](Listener& l, Socket*& out) -> Task<> {
    out = co_await l.accept();
  }(listener, server));
  t.sched.spawn([](TwoHosts& tv) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 1);
    (void)co_await (*r)->send(bytes_of("ab"));  // only 2 of the 4 expected
    (*r)->close();
  }(t));
  t.sched.run_until(1_ms);

  Errc err = Errc::ok;
  std::vector<std::byte> buf(4);
  t.sched.spawn([](Socket& s, std::vector<std::byte>& buf2, Errc& ec) -> Task<> {
    auto st = co_await s.recv_exact(buf2);
    ec = st.error();
  }(*server, buf, err));
  t.sched.run();
  EXPECT_EQ(err, Errc::protocol_error);
}

TEST(Lifecycle, SimultaneousCloseBothEnds) {
  TwoHosts t;
  Listener& listener = t.stack_b.listen(1);
  Socket* server = nullptr;
  Socket* client = nullptr;
  t.sched.spawn([](Listener& l, Socket*& out) -> Task<> {
    out = co_await l.accept();
  }(listener, server));
  t.sched.spawn([](TwoHosts& tv, Socket*& out) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 1);
    out = *r;
  }(t, client));
  t.sched.run();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);

  // Both sides close at the same instant; both FINs cross on the wire.
  client->close();
  server->close();
  t.sched.run();
  EXPECT_EQ(client->state(), SockState::closed);
  EXPECT_EQ(server->state(), SockState::closed);
  // Reads on either side report the local close, not a hang.
  Errc err = Errc::ok;
  t.sched.spawn([](Socket& s, Errc& ec) -> Task<> {
    std::vector<std::byte> buf(8);
    auto r = co_await s.recv(buf);
    ec = r.ok() ? Errc::ok : r.error();
  }(*client, err));
  t.sched.run();
  EXPECT_EQ(err, Errc::disconnected);
}

// -------------------------------------------------------------- costs ----

TEST(Costs, SendChargesCpu) {
  TwoHosts t;
  Listener& listener = t.stack_b.listen(1);
  t.sched.spawn([](Listener& l) -> Task<> { (void)co_await l.accept(); }(listener));
  t.sched.spawn([](TwoHosts& tv) -> Task<> {
    auto r = co_await tv.stack_a.connect(tv.stack_b.addr(), 1);
    std::vector<std::byte> msg(64_KiB);
    (void)co_await (*r)->send(msg);
  }(t));
  t.sched.run();
  // Syscall + copy of 64 KiB must appear in client CPU accounting.
  EXPECT_GT(t.host_a.cpu().busy_ns(),
            static_cast<std::uint64_t>(64.0 * 1024 * toe_10ge().copy_ns_per_byte));
}

TEST(Costs, ToeOffloadsSegmentationCpu) {
  // Same payload over TOE vs plain kernel TCP on identical fabric: the
  // TOE sender burns less CPU (per-segment work moved to the NIC).
  auto run_one = [](StackCosts costs) {
    Scheduler sched;
    sim::Fabric fabric(sched, sim::ten_gige_link());
    sim::Host a(sched, 0, "a", 8), b(sched, 1, "b", 8);
    NetStack sa(sched, fabric, a, costs), sb(sched, fabric, b, costs);
    Listener& l = sb.listen(1);
    sched.spawn([](Listener& l2) -> Task<> { (void)co_await l2.accept(); }(l));
    sched.spawn([](NetStack& sa2, NetStack& sb2) -> Task<> {
      auto r = co_await sa2.connect(sb2.addr(), 1);
      std::vector<std::byte> msg(256_KiB);
      (void)co_await (*r)->send(msg);
    }(sa, sb));
    sched.run();
    return a.cpu().busy_ns();
  };
  auto toe_costs = toe_10ge();
  auto tcp_costs = kernel_tcp_1ge();
  tcp_costs.copy_ns_per_byte = toe_costs.copy_ns_per_byte;
  tcp_costs.syscall_ns = toe_costs.syscall_ns;
  tcp_costs.mss = toe_costs.mss;
  EXPECT_LT(run_one(toe_costs), run_one(tcp_costs));
}

// ------------------------------------------------------------- jitter ----

TEST(Jitter, StreamNeverReordersUnderNoise) {
  // The SDP-on-QDR jitter model delays segments by random amounts; the
  // byte stream must still arrive in exact order (per-socket monotonic
  // delivery). Property-check with a long patterned transfer.
  Scheduler sched;
  sim::Fabric fabric(sched, sim::ib_qdr_link());
  sim::Host a(sched, 0, "a", 8), b(sched, 1, "b", 8);
  auto costs = sdp_ib();
  costs.jitter_ns = 50000;  // heavy noise, up to 50 us per segment
  NetStack sa(sched, fabric, a, costs), sb(sched, fabric, b, costs);
  Listener& listener = sb.listen(1);

  bool verified = false;
  sched.spawn([](Listener& l, bool& verified2) -> Task<> {
    Socket* s = co_await l.accept();
    std::vector<std::byte> buf(256_KiB);
    auto st = co_await s->recv_exact(buf);
    EXPECT_TRUE(st.ok());
    bool ordered = true;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      ordered &= buf[i] == static_cast<std::byte>(i & 0xff);
    }
    verified2 = ordered;
  }(listener, verified));

  sched.spawn([](NetStack& sa2, NetStack& sb2) -> Task<> {
    auto r = co_await sa2.connect(sb2.addr(), 1);
    std::vector<std::byte> out(256_KiB);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<std::byte>(i & 0xff);
    // Send in awkward chunk sizes to shuffle segment boundaries.
    std::size_t offset = 0;
    const std::size_t chunks[] = {1, 7777, 100, 65536, 3, 190000};
    for (std::size_t c : chunks) {
      const std::size_t n = std::min(c, out.size() - offset);
      (void)co_await (*r)->send(std::span<const std::byte>(out.data() + offset, n));
      offset += n;
    }
    if (offset < out.size()) {
      (void)co_await (*r)->send(
          std::span<const std::byte>(out.data() + offset, out.size() - offset));
    }
  }(sa, sb));
  sched.run();
  EXPECT_TRUE(verified);
}

// ------------------------------------------------- cross-stack timing ----

/// Round-trip a small message and report completion time.
sim::Time ping_pong_time(const sim::LinkParams& link, const StackCosts& costs) {
  Scheduler sched;
  sim::Fabric fabric(sched, link);
  sim::Host a(sched, 0, "a", 8), b(sched, 1, "b", 8);
  NetStack sa(sched, fabric, a, costs), sb(sched, fabric, b, costs);
  Listener& l = sb.listen(1);
  sched.spawn(echo_server(l));
  sim::Time done = 0;
  sched.spawn([](Scheduler& sch, NetStack& sa2, NetStack& sb2, sim::Time& fin) -> Task<> {
    auto r = co_await sa2.connect(sb2.addr(), 1);
    Socket* s = *r;
    std::vector<std::byte> msg(64);
    const sim::Time start = sch.now();
    (void)co_await s->send(msg);
    auto st = co_await s->recv_exact(msg);
    EXPECT_TRUE(st.ok());
    fin = sch.now() - start;
  }(sched, sa, sb, done));
  sched.run();
  return done;
}

TEST(Timing, StackLatencyOrderingMatchesPaper) {
  // §I: best sockets-on-IB ~20-25 us one-way vs verbs 1-2 us; 1GigE worst.
  const auto sdp = ping_pong_time(sim::ib_qdr_link(), sdp_ib());
  const auto ipoib = ping_pong_time(sim::ib_qdr_link(), kernel_tcp_ipoib());
  const auto toe = ping_pong_time(sim::ten_gige_link(), toe_10ge());
  const auto gige = ping_pong_time(sim::one_gige_link(), kernel_tcp_1ge());

  EXPECT_LT(sdp, ipoib);   // SDP bypasses kernel TCP
  EXPECT_LT(toe, ipoib);   // offloaded 10GigE beats kernel TCP over IB
  EXPECT_LT(toe, gige);    // and of course beats 1GigE
  EXPECT_LT(ipoib, gige);  // fast link still helps kernel TCP
  // Round-trip small message over SDP should be tens of microseconds.
  EXPECT_GT(sdp, 10_us);
  EXPECT_LT(sdp, 100_us);
}

}  // namespace
}  // namespace rmc::sock
