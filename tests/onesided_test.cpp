// One-sided GET subsystem: the self-verifying remote index.
//
// Covers the publisher's publish/retract discipline (link, delete, flush,
// oversize skip, bucket displacement), the client's two-read verify
// ladder with its RPC fallback, and — the governing invariant — that a
// one-sided GET NEVER surfaces a torn value: under concurrent writers and
// a scripted lossy-link window, every GET either verifies a consistent
// published record or falls back to the RPC path.
#include <gtest/gtest.h>

#include <charconv>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "obs/metrics.hpp"
#include "onesided/publisher.hpp"
#include "simnet/faults.hpp"
#include "simnet/netparams.hpp"
#include "ucr/runtime.hpp"

namespace rmc {
namespace {

using namespace rmc::literals;
using sim::Scheduler;
using sim::Task;

std::uint64_t metric(const char* name) { return obs::registry().counter(name).value(); }

std::span<const std::byte> bytes_view(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// One server with a Publisher, one one-sided reader client, one RPC-only
/// writer client, all on one QDR fabric with the fault injector in reach.
struct OneSidedWorld {
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};

  sim::Host server_host{sched, 0, "server", 8};
  verbs::Hca server_hca{sched, fabric, server_host};
  ucr::Runtime server_ucr{server_hca};
  mc::Server server{sched, server_host, mc::ServerConfig{}};
  std::unique_ptr<onesided::Publisher> publisher;

  sim::Host reader_host{sched, 1, "reader", 8};
  verbs::Hca reader_hca{sched, fabric, reader_host};
  ucr::Runtime reader_ucr{reader_hca};
  std::unique_ptr<mc::Client> reader;

  sim::Host writer_host{sched, 2, "writer", 8};
  verbs::Hca writer_hca{sched, fabric, writer_host};
  ucr::Runtime writer_ucr{writer_hca};
  std::unique_ptr<mc::Client> writer;

  explicit OneSidedWorld(onesided::PublisherConfig pub_cfg = {},
                         mc::ClientBehavior reader_behavior = {}) {
    server.attach_ucr_frontend(server_ucr);
    publisher = std::make_unique<onesided::Publisher>(server_ucr, server_host,
                                                      server.store(), pub_cfg);
    reader_behavior.onesided_get = true;
    reader = std::make_unique<mc::Client>(sched, reader_host, reader_behavior);
    reader->add_server_ucr(reader_ucr, server_ucr.addr(), 11211);
    writer = std::make_unique<mc::Client>(sched, writer_host, mc::ClientBehavior{});
    writer->add_server_ucr(writer_ucr, server_ucr.addr(), 11211);
  }

  /// Run one coroutine to completion under a horizon.
  void drive(Task<> task, sim::Time horizon = 5_s) {
    bool done = false;
    sched.spawn([](Task<> inner, bool& fin) -> Task<> {
      co_await std::move(inner);
      fin = true;
    }(std::move(task), done));
    const sim::Time deadline = sched.now() + horizon;
    while (!done && sched.now() < deadline) {
      const sim::Time before = sched.now();
      sched.run_until(std::min(deadline, before + 1_ms));
      if (sched.now() == before) break;  // queue drained: no progress possible
    }
    ASSERT_TRUE(done) << "scenario hung past its horizon";
  }
};

// ----------------------------------------------------- the happy path ----

TEST(OneSided, HitBypassesServerAndFallsBackOnMissAndDelete) {
  OneSidedWorld w;
  const std::uint64_t reads0 = metric("mc.oneside.reads");
  const std::uint64_t falls0 = metric("mc.oneside.fallbacks");

  w.drive([](OneSidedWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.writer->connect_all()).ok());
    EXPECT_TRUE((co_await wk.reader->connect_all()).ok());
    EXPECT_TRUE((co_await wk.writer->set("alpha", bytes_view("value-one"), 7)).ok());

    const auto gets_before = wk.server.store().stats().cmd_get;
    auto hit = co_await wk.reader->get("alpha");
    EXPECT_TRUE(hit.ok());
    if (hit.ok()) {
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(hit->data.data()),
                            hit->data.size()),
                "value-one");
      EXPECT_EQ(hit->flags, 7u);
    }
    // The whole point: the server's GET path never ran.
    EXPECT_EQ(wk.server.store().stats().cmd_get, gets_before);

    // Miss: not published, so the fallback RPC answers authoritatively.
    auto miss = co_await wk.reader->get("never-stored");
    EXPECT_EQ(miss.error(), Errc::not_found);

    // Delete retracts: the one-sided path must not serve the dead value.
    EXPECT_TRUE((co_await wk.writer->del("alpha")).ok());
    auto gone = co_await wk.reader->get("alpha");
    EXPECT_EQ(gone.error(), Errc::not_found);
  }(w));

  EXPECT_GT(metric("mc.oneside.reads"), reads0);
  EXPECT_GT(metric("mc.oneside.fallbacks"), falls0);
  EXPECT_GE(w.publisher->published(), 1u);
  EXPECT_GE(w.publisher->retracted(), 1u);
}

TEST(OneSided, GetIntoLandsInCallerBuffer) {
  OneSidedWorld w;
  w.drive([](OneSidedWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.writer->connect_all()).ok());
    EXPECT_TRUE((co_await wk.reader->connect_all()).ok());
    const std::string value(600, 'x');
    EXPECT_TRUE((co_await wk.writer->set("blob", bytes_view(value))).ok());

    std::vector<std::byte> dest(4096);
    auto r = co_await wk.reader->get_into("blob", dest);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_EQ(r->value_len, value.size());
      EXPECT_EQ(std::memcmp(dest.data(), value.data(), value.size()), 0);
    }
  }(w));
}

TEST(OneSided, OversizeValuesSkipPublishAndFlushRetracts) {
  onesided::PublisherConfig cfg;
  cfg.slot_size = 256;  // values near/over 256 B can't be published
  OneSidedWorld w(cfg);

  w.drive([](OneSidedWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.writer->connect_all()).ok());
    EXPECT_TRUE((co_await wk.reader->connect_all()).ok());

    const std::string big(1000, 'b');
    EXPECT_TRUE((co_await wk.writer->set("big", bytes_view(big))).ok());
    EXPECT_GE(wk.publisher->skipped_oversize(), 1u);

    // Served correctly anyway — by the RPC fallback.
    auto r = co_await wk.reader->get("big");
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_EQ(r->data.size(), big.size());
    }

    // flush_all retracts every published entry.
    EXPECT_TRUE((co_await wk.writer->set("small", bytes_view("tiny"))).ok());
    EXPECT_TRUE((co_await wk.reader->get("small")).ok());
    EXPECT_TRUE((co_await wk.writer->flush_all()).ok());
    auto flushed = co_await wk.reader->get("small");
    EXPECT_EQ(flushed.error(), Errc::not_found);
  }(w));
}

TEST(OneSided, BucketDisplacementFallsBackInsteadOfMisreading) {
  // A 1-bucket, 1-way index: every second key displaces the first. The
  // displaced key must still be served (RPC), never misread.
  onesided::PublisherConfig cfg;
  cfg.bucket_count = 1;
  cfg.ways = 1;
  OneSidedWorld w(cfg);

  w.drive([](OneSidedWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.writer->connect_all()).ok());
    EXPECT_TRUE((co_await wk.reader->connect_all()).ok());
    EXPECT_TRUE((co_await wk.writer->set("first", bytes_view("v-first"))).ok());
    EXPECT_TRUE((co_await wk.writer->set("second", bytes_view("v-second"))).ok());

    auto a = co_await wk.reader->get("first");
    EXPECT_TRUE(a.ok());
    if (a.ok()) {
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(a->data.data()), a->data.size()),
                "v-first");
    }
    auto b = co_await wk.reader->get("second");
    EXPECT_TRUE(b.ok());
    if (b.ok()) {
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(b->data.data()), b->data.size()),
                "v-second");
    }
  }(w));
}

// ------------------------------------------------------------- chaos ----

/// Generation-stamped value: "<gen>:" + a fill byte derived from (gen,
/// key). Any stitch of two generations fails the consistency check.
std::string gen_value(int gen, int key, std::size_t len) {
  std::string v = std::to_string(gen) + ":";
  v.append(len, static_cast<char>('a' + (gen * 7 + key * 3) % 26));
  return v;
}

bool value_consistent(const std::string& v, int key, std::size_t len) {
  const auto colon = v.find(':');
  if (colon == std::string::npos) return false;
  int gen = -1;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + colon, gen);
  if (ec != std::errc{} || ptr != v.data() + colon) return false;
  return v == gen_value(gen, key, len);
}

TEST(OneSided, NeverServesTornValuesUnderWritersAndLinkLoss) {
  mc::ClientBehavior reader_behavior;
  reader_behavior.op_timeout = 300_us;
  reader_behavior.max_retries = 2;
  reader_behavior.eject_after_failures = 0;  // pool of one: keep retrying it
  OneSidedWorld w(onesided::PublisherConfig{}, reader_behavior);

  constexpr int kKeys = 8;
  constexpr int kGens = 40;
  constexpr std::size_t kLen = 512;

  // A scripted lossy window on the reader<->server link while the writer
  // keeps republishing every key: reads race publishes, and some RDMA
  // reads vanish mid-protocol.
  const sim::Time t0 = w.sched.now();
  w.fabric.faults().schedule({
      {t0 + 200_us, {.kind = sim::Fault::Kind::loss,
                     .a = 1 /* reader */, .b = 0 /* server */,
                     .drop_per_million = 30'000}},
      {t0 + 2_ms, {.kind = sim::Fault::Kind::loss, .a = 1, .b = 0,
                   .drop_per_million = 0}},
  });

  int hits = 0, misses = 0, transport_errors = 0, torn = 0;
  bool writer_done = false;

  w.drive([](OneSidedWorld& wk2, int& hits2, int& misses2, int& transport_errors2, int& torn2,
             bool& writer_done22) -> Task<> {
    EXPECT_TRUE((co_await wk2.writer->connect_all()).ok());
    EXPECT_TRUE((co_await wk2.reader->connect_all()).ok());
    for (int k = 0; k < kKeys; ++k) {
      EXPECT_TRUE(
          (co_await wk2.writer->set("key" + std::to_string(k), bytes_view(gen_value(0, k, kLen))))
              .ok());
    }

    // Writer: republish every key, generation after generation.
    wk2.sched.spawn([](OneSidedWorld& wk, bool& writer_done2) -> Task<> {
      for (int gen = 1; gen <= kGens; ++gen) {
        for (int k = 0; k < kKeys; ++k) {
          (void)co_await wk.writer->set("key" + std::to_string(k),
                                       bytes_view(gen_value(gen, k, kLen)));
        }
      }
      writer_done2 = true;
    }(wk2, writer_done22));

    // Reader: hammer GETs across the keys while the writer churns and the
    // link drops packets. Every result must verify or fall back — tally
    // anything inconsistent as torn2.
    Rng rng(42);
    for (int i = 0; i < 600; ++i) {
      const int k = static_cast<int>(rng.below(kKeys));
      auto r = co_await wk2.reader->get("key" + std::to_string(k));
      if (r.ok()) {
        const std::string v(reinterpret_cast<const char*>(r->data.data()), r->data.size());
        if (value_consistent(v, k, kLen)) {
          ++hits2;
        } else {
          ++torn2;
          ADD_FAILURE() << "torn value for key" << k << ": " << v.substr(0, 32);
        }
      } else if (r.error() == Errc::not_found) {
        ++misses2;
      } else {
        ++transport_errors2;  // lossy window: bounded failures are fine
      }
    }
  }(w, hits, misses, transport_errors, torn, writer_done));

  EXPECT_EQ(torn, 0);
  EXPECT_GT(hits, 0);
  EXPECT_GT(metric("mc.oneside.reads"), 0u);
  // The writer churned through every generation while we read.
  EXPECT_TRUE(writer_done);
}

}  // namespace
}  // namespace rmc
