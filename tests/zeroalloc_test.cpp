// The PR's headline property, verified end to end: once warm, a GET over
// UCR performs ZERO heap allocations per request — client marshalling,
// verbs transmit/receive, scheduler dispatch, server worker, store lookup,
// eager reply, and the client-side landing of the value are all pooled,
// intrusive, or on the stack.
//
// This TU replaces the global operator new/delete with counting wrappers;
// the steady-state loop asserts the counter does not move.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <new>
#include <string>

#include "core/testbed.hpp"
#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "obs/profiler.hpp"
#include "rfp/ring_server.hpp"
#include "simnet/netparams.hpp"

namespace {
// Not atomic on purpose: the simulation is single-threaded, and the counter
// must not perturb codegen on the hot path.
long long g_news = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  ++g_news;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (n + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t align) { return operator new(n, align); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace rmc::mc {
namespace {

using sim::Scheduler;
using sim::Task;

std::span<const std::byte> val(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(ZeroAlloc, SteadyStateUcrGetAllocatesNothing) {
  Scheduler sched;
  sim::Fabric ib{sched, sim::ib_qdr_link()};
  sim::Host server_host{sched, 0, "server", 8};
  sim::Host client_host{sched, 1, "client", 8};
  verbs::Hca server_hca{sched, ib, server_host};
  verbs::Hca client_hca{sched, ib, client_host};
  ucr::Runtime server_ucr{server_hca};
  ucr::Runtime client_ucr{client_hca};
  Server server{sched, server_host, {}};
  server.attach_ucr_frontend(server_ucr);

  ClientBehavior behavior;
  behavior.op_timeout = sim::kNoTimeout;  // timed waits heap-allocate a WaitState
  Client client{sched, client_host, behavior};
  client.add_server_ucr(client_ucr, server_ucr.addr(), server.config().port);

  bool done = false;
  long long delta = -1;
  long long failures = 0;

  sched.spawn([](Client& cli, bool& fin, long long& delta2,
                 long long& failures2) -> Task<> {
    // ASSERT_* expands to `return;`, ill-formed in a coroutine — check by hand.
    if (!(co_await cli.connect_all()).ok()) { ADD_FAILURE() << "connect"; co_return; }
    const std::string value(64, 'v');
    if (!(co_await cli.set("hot-key", val(value), 7)).ok()) {
      ADD_FAILURE() << "set";
      co_return;
    }

    std::array<std::byte, 256> dest;
    // Warm-up: fill every pool and free list (scheduler heap, packet and
    // frame pools, staging slots, slot maps, worker queues, metrics).
    for (int i = 0; i < 2000; ++i) {
      auto r = co_await cli.get_into("hot-key", dest);
      if (!r.ok() || r->value_len != 64) { ADD_FAILURE() << "warm-up get"; co_return; }
    }

    // Steady state: 10k GETs, zero allocations. No gtest macros inside the
    // loop — even their success paths are not audited for allocation.
    const long long before = g_news;
    for (int i = 0; i < 10000; ++i) {
      auto r = co_await cli.get_into("hot-key", dest);
      if (!r.ok() || r->value_len != 64 || r->flags != 7) ++failures2;
    }
    delta2 = g_news - before;
    fin = true;
  }(client, done, delta, failures));
  sched.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(delta, 0) << "heap allocations on the steady-state GET path";
}

// The batched multiget inherits the property: one mget_into round — key
// block pack, doorbell-batched sub-request issue, server-side single-pass
// lookup + scatter-gather chunking, batch-drained reply, slot scatter —
// allocates nothing once warm. Slots and key views live on this frame;
// values land in the client arena.
TEST(ZeroAlloc, SteadyStateUcrMgetAllocatesNothing) {
  Scheduler sched;
  sim::Fabric ib{sched, sim::ib_qdr_link()};
  sim::Host server_host{sched, 0, "server", 8};
  sim::Host client_host{sched, 1, "client", 8};
  verbs::Hca server_hca{sched, ib, server_host};
  verbs::Hca client_hca{sched, ib, client_host};
  ucr::Runtime server_ucr{server_hca};
  ucr::Runtime client_ucr{client_hca};
  Server server{sched, server_host, {}};
  server.attach_ucr_frontend(server_ucr);

  ClientBehavior behavior;
  behavior.op_timeout = sim::kNoTimeout;  // timed waits heap-allocate a WaitState
  Client client{sched, client_host, behavior};
  client.add_server_ucr(client_ucr, server_ucr.addr(), server.config().port);

  bool done = false;
  long long delta = -1;
  long long failures = 0;

  sched.spawn([](Client& cli, bool& fin, long long& delta2,
                 long long& failures2) -> Task<> {
    if (!(co_await cli.connect_all()).ok()) { ADD_FAILURE() << "connect"; co_return; }
    constexpr std::size_t kWidth = 16;
    std::array<std::string, kWidth> keys;
    std::array<std::string_view, kWidth> views;
    std::array<mc::MgetSlot, kWidth> slots;
    const std::string value(64, 'v');
    for (std::size_t i = 0; i < kWidth; ++i) {
      keys[i] = "mget-key-" + std::to_string(i);
      views[i] = keys[i];
      if (!(co_await cli.set(keys[i], val(value), 7)).ok()) {
        ADD_FAILURE() << "set " << i;
        co_return;
      }
    }

    // Warm-up: pools, counter free list, slot maps, worker scratch, the
    // server's chunk plan vectors, metrics and latency-span registrations.
    for (int i = 0; i < 500; ++i) {
      auto st = co_await cli.mget_into(views, slots);
      if (!st.ok()) { ADD_FAILURE() << "warm-up mget"; co_return; }
    }

    const long long before = g_news;
    for (int i = 0; i < 2000; ++i) {
      auto st = co_await cli.mget_into(views, slots);
      if (!st.ok()) ++failures2;
      for (std::size_t k = 0; k < kWidth; ++k) {
        if (!slots[k].hit || slots[k].value_len != 64 || slots[k].flags != 7) ++failures2;
      }
    }
    delta2 = g_news - before;
    fin = true;
  }(client, done, delta, failures));
  sched.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(delta, 0) << "heap allocations on the steady-state mget path";
}

// The RFP rings inherit the property for GET *and* SET: framing the
// request into the registered staging slot, the one-sided write out, the
// server's sweep + execute + response write, and the client's local
// response poll are all pooled or in-place. Request and response frames
// live in arenas sized at bootstrap; slot epochs replace clearing writes.
TEST(ZeroAlloc, SteadyStateRfpGetAndSetAllocateNothing) {
  Scheduler sched;
  sim::Fabric ib{sched, sim::ib_qdr_link()};
  sim::Host server_host{sched, 0, "server", 8};
  sim::Host client_host{sched, 1, "client", 8};
  verbs::Hca server_hca{sched, ib, server_host};
  verbs::Hca client_hca{sched, ib, client_host};
  ucr::Runtime server_ucr{server_hca};
  ucr::Runtime client_ucr{client_hca};
  Server server{sched, server_host, {}};
  server.attach_ucr_frontend(server_ucr);
  rfp::RingServer ring{server_ucr, server_host, server.store(), {}};

  ClientBehavior behavior;
  behavior.mode = ClientBehavior::Mode::rfp;
  behavior.op_timeout = sim::kNoTimeout;  // timed waits heap-allocate a WaitState
  Client client{sched, client_host, behavior};
  client.add_server_ucr(client_ucr, server_ucr.addr(), server.config().port);

  bool done = false;
  long long get_delta = -1;
  long long set_delta = -1;
  long long failures = 0;

  sched.spawn([](Client& cli, bool& fin, long long& get_delta2, long long& set_delta2,
                 long long& failures2) -> Task<> {
    if (!(co_await cli.connect_all()).ok()) { ADD_FAILURE() << "connect"; co_return; }
    const std::string value(64, 'v');
    if (!(co_await cli.set("hot-key", val(value), 7)).ok()) {
      ADD_FAILURE() << "set";
      co_return;
    }

    std::array<std::byte, 256> dest;
    // Warm-up: rings bootstrapped, poll loop resident, every pool filled.
    for (int i = 0; i < 2000; ++i) {
      auto r = co_await cli.get_into("hot-key", dest);
      if (!r.ok() || r->value_len != 64) { ADD_FAILURE() << "warm-up get"; co_return; }
      if (!(co_await cli.set("hot-key", val(value), 7)).ok()) {
        ADD_FAILURE() << "warm-up set";
        co_return;
      }
    }

    const long long get_before = g_news;
    for (int i = 0; i < 10000; ++i) {
      auto r = co_await cli.get_into("hot-key", dest);
      if (!r.ok() || r->value_len != 64 || r->flags != 7) ++failures2;
    }
    get_delta2 = g_news - get_before;

    const long long set_before = g_news;
    for (int i = 0; i < 10000; ++i) {
      if (!(co_await cli.set("hot-key", val(value), 7)).ok()) ++failures2;
    }
    set_delta2 = g_news - set_before;
    fin = true;
  }(client, done, get_delta, set_delta, failures));
  sched.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(get_delta, 0) << "heap allocations on the steady-state RFP GET path";
  EXPECT_EQ(set_delta, 0) << "heap allocations on the steady-state RFP SET path";
  // The ops above actually rode the rings (one bootstrapped client).
  EXPECT_EQ(ring.ring_count(), 1u);
  EXPECT_GT(obs::registry().counter("mc.rfp.ops").value(), 20000u);
}

// Same property with the attribution profiler ON: ProfScope push/pop and
// the latency-span timers are fixed-array / pre-registered writes, so
// profiling a run must not reintroduce per-request allocations — otherwise
// the profiler would distort the very hot path it measures.
TEST(ZeroAlloc, SteadyStateUcrGetWithProfilingAllocatesNothing) {
  Scheduler sched;
  sim::Fabric ib{sched, sim::ib_qdr_link()};
  sim::Host server_host{sched, 0, "server", 8};
  sim::Host client_host{sched, 1, "client", 8};
  verbs::Hca server_hca{sched, ib, server_host};
  verbs::Hca client_hca{sched, ib, client_host};
  ucr::Runtime server_ucr{server_hca};
  ucr::Runtime client_ucr{client_hca};
  Server server{sched, server_host, {}};
  server.attach_ucr_frontend(server_ucr);

  ClientBehavior behavior;
  behavior.op_timeout = sim::kNoTimeout;
  Client client{sched, client_host, behavior};
  client.add_server_ucr(client_ucr, server_ucr.addr(), server.config().port);

  obs::profiler().reset();
  obs::profiler().enable();

  bool done = false;
  long long delta = -1;
  long long failures = 0;

  sched.spawn([](Client& cli, bool& fin, long long& delta2,
                 long long& failures2) -> Task<> {
    if (!(co_await cli.connect_all()).ok()) { ADD_FAILURE() << "connect"; co_return; }
    const std::string value(64, 'v');
    if (!(co_await cli.set("hot-key", val(value), 7)).ok()) {
      ADD_FAILURE() << "set";
      co_return;
    }

    std::array<std::byte, 256> dest;
    for (int i = 0; i < 2000; ++i) {
      auto r = co_await cli.get_into("hot-key", dest);
      if (!r.ok() || r->value_len != 64) { ADD_FAILURE() << "warm-up get"; co_return; }
    }

    const long long before = g_news;
    for (int i = 0; i < 10000; ++i) {
      auto r = co_await cli.get_into("hot-key", dest);
      if (!r.ok() || r->value_len != 64 || r->flags != 7) ++failures2;
    }
    delta2 = g_news - before;
    fin = true;
  }(client, done, delta, failures));
  sched.run();

  obs::profiler().disable();
  EXPECT_TRUE(done);
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(delta, 0) << "profiling reintroduced allocations on the GET path";
  EXPECT_GT(obs::profiler().sample_count(), 0u) << "profiler saw no scopes";
  obs::profiler().reset();
}

}  // namespace
}  // namespace rmc::mc
