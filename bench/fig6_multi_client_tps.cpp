// Figure 6 reproduction: aggregate transactions per second for Get
// operations with 8 and 16 clients (each on its own host), message sizes
// 4 B and 4 KB, on both clusters.
//
// Paper shapes (§VI-D):
//  - Cluster A small Gets: UCR ~6x 10GigE-TOE; TOE outperforms IPoIB.
//  - Cluster B small Gets: UCR ~6x SDP, around 1.8M ops/s at 16 clients;
//    SDP below IPoIB (the QDR SDP software issue).
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/workload.hpp"

using namespace rmc;

namespace {

double tps_cell(core::ClusterKind cluster, core::TransportKind transport,
                std::uint32_t value_size, unsigned clients) {
  core::TestBedConfig config;
  config.cluster = cluster;
  config.transport = transport;
  config.num_clients = clients;
  core::TestBed bed(config);
  core::WorkloadConfig workload;
  workload.pattern = core::OpPattern::pure_get;
  workload.value_size = value_size;
  workload.ops_per_client = 2000;
  const auto result = core::run_workload(bed, workload);
  return result.tps();
}

bool g_csv = false;

void tps_table(const std::string& title, core::ClusterKind cluster, std::uint32_t value_size,
               const std::vector<core::TransportKind>& transports) {
  if (g_csv) {
    std::printf("# %s\nclients", title.c_str());
    for (auto t : transports) std::printf(",%s", std::string(core::transport_name(t)).c_str());
    std::printf("\n");
    for (unsigned clients : {8u, 16u}) {
      std::printf("%u", clients);
      for (auto t : transports) {
        std::printf(",%.1f", tps_cell(cluster, t, value_size, clients) / 1000.0);
      }
      std::printf("\n");
    }
    std::printf("\n");
    return;
  }
  std::vector<std::string> columns{"clients"};
  for (auto t : transports) columns.emplace_back(core::transport_name(t));
  Table table(title, columns);
  for (unsigned clients : {8u, 16u}) {
    std::vector<std::string> row{std::to_string(clients)};
    for (auto t : transports) {
      row.push_back(Table::num(tps_cell(cluster, t, value_size, clients) / 1000.0, 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") g_csv = true;
  }
  const std::vector<core::TransportKind> cluster_a{
      core::TransportKind::ucr_verbs, core::TransportKind::sdp, core::TransportKind::ipoib,
      core::TransportKind::toe_10ge};
  const std::vector<core::TransportKind> cluster_b{
      core::TransportKind::ucr_verbs, core::TransportKind::sdp, core::TransportKind::ipoib};

  std::printf("=== Figure 6: Aggregate Get Transactions per Second (thousands) ===\n\n");
  tps_table("Fig 6(a) 4 byte - Cluster A", core::ClusterKind::cluster_a, 4, cluster_a);
  tps_table("Fig 6(b) 4096 byte - Cluster A", core::ClusterKind::cluster_a, 4096, cluster_a);
  tps_table("Fig 6(c) 4 byte - Cluster B", core::ClusterKind::cluster_b, 4, cluster_b);
  tps_table("Fig 6(d) 4096 byte - Cluster B", core::ClusterKind::cluster_b, 4096, cluster_b);

  const double ucr16 = tps_cell(core::ClusterKind::cluster_b,
                                core::TransportKind::ucr_verbs, 4, 16);
  const double sdp16 = tps_cell(core::ClusterKind::cluster_b, core::TransportKind::sdp, 4, 16);
  std::printf("headline: Cluster B 4B/16 clients UCR=%.2fM ops/s (paper ~1.8M), "
              "UCR/SDP=%.1fx (paper ~6x)\n",
              ucr16 / 1e6, ucr16 / sdp16);
  return 0;
}
