// Figure 6 reproduction: aggregate transactions per second for Get
// operations with 8 and 16 clients (each on its own host), message sizes
// 4 B and 4 KB, on both clusters.
//
// Paper shapes (§VI-D):
//  - Cluster A small Gets: UCR ~6x 10GigE-TOE; TOE outperforms IPoIB.
//  - Cluster B small Gets: UCR ~6x SDP, around 1.8M ops/s at 16 clients;
//    SDP below IPoIB (the QDR SDP software issue).
#include <cstdio>

#include "fig_common.hpp"

using namespace rmc;
using namespace rmc::bench;

int main(int argc, char** argv) {
  const bool csv = csv_mode(argc, argv);
  const std::string profile_file = profile_path(argc, argv);
  const std::uint64_t seed = seed_arg(argc, argv);
  const std::vector<unsigned> clients{8u, 16u};
  const std::vector<core::TransportKind> cluster_a{
      core::TransportKind::ucr_verbs, core::TransportKind::sdp, core::TransportKind::ipoib,
      core::TransportKind::toe_10ge};
  const std::vector<core::TransportKind> cluster_b{
      core::TransportKind::ucr_verbs, core::TransportKind::sdp, core::TransportKind::ipoib};

  std::printf("=== Figure 6: Aggregate Get Transactions per Second (thousands) ===\n\n");
  tps_table("Fig 6(a) 4 byte - Cluster A", core::ClusterKind::cluster_a, 4, cluster_a,
            clients, csv, seed);
  tps_table("Fig 6(b) 4096 byte - Cluster A", core::ClusterKind::cluster_a, 4096, cluster_a,
            clients, csv, seed);
  tps_table("Fig 6(c) 4 byte - Cluster B", core::ClusterKind::cluster_b, 4, cluster_b,
            clients, csv, seed);
  tps_table("Fig 6(d) 4096 byte - Cluster B", core::ClusterKind::cluster_b, 4096, cluster_b,
            clients, csv, seed);

  const double ucr16 = tps_cell(core::ClusterKind::cluster_b,
                                core::TransportKind::ucr_verbs, 4, 16, 2000, seed);
  const double sdp16 =
      tps_cell(core::ClusterKind::cluster_b, core::TransportKind::sdp, 4, 16, 2000, seed);
  std::printf("headline: Cluster B 4B/16 clients UCR=%.2fM ops/s (paper ~1.8M), "
              "UCR/SDP=%.1fx (paper ~6x)\n",
              ucr16 / 1e6, ucr16 / sdp16);

  // --trace <file>: one representative traced cell (UCR 4 B, 8 clients on
  // Cluster B) with a reduced op count to keep the artifact small.
  const std::string trace_file = arg_value(argc, argv, "--trace");
  if (!trace_file.empty()) {
    obs::tracer().enable();
    const double traced_tps =
        tps_cell(core::ClusterKind::cluster_b, core::TransportKind::ucr_verbs, 4, 8, 200, seed);
    std::printf("traced cell: 4B/8 clients UCR=%.2fM ops/s\n", traced_tps / 1e6);
    write_trace(trace_file);
  }
  dump_metrics_if_requested(argc, argv);
  dump_latency_if_requested(argc, argv);
  write_profile(profile_file);
  return 0;
}
