// Shared helpers for the figure benchmarks: the message-size sweeps of
// Figures 3-5 and the table layout that mirrors the paper's plots (one row
// per x-axis point, one column per transport).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.hpp"
#include "core/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "simnet/explore.hpp"

namespace rmc::bench {

/// Tie-breaker installed on every cell's scheduler, or nullptr (the
/// default: the scheduler's pinned insertion-order dispatch with no hook
/// at all). Set via init_tie_breaker().
inline sim::TieBreaker*& cell_tie_breaker() {
  static sim::TieBreaker* breaker = nullptr;
  return breaker;
}


/// Small-message panel sizes (Figs. 3/4 left half; Fig. 5).
inline std::vector<std::uint32_t> small_sizes() {
  return {1, 4, 16, 64, 256, 1024, 2048, 4096};
}

/// Large-message panel sizes (Figs. 3/4 right half).
inline std::vector<std::uint32_t> large_sizes() {
  return {8192, 16384, 32768, 65536, 131072, 262144, 524288};
}

/// Run one (cluster, transport, pattern, size) cell and return the mean
/// latency in microseconds.
inline double latency_cell(core::ClusterKind cluster, core::TransportKind transport,
                           core::OpPattern pattern, std::uint32_t value_size,
                           std::uint64_t ops = 300, std::uint64_t seed = 1) {
  core::TestBedConfig config;
  config.cluster = cluster;
  config.transport = transport;
  core::TestBed bed(config);
  if (sim::TieBreaker* breaker = cell_tie_breaker()) bed.scheduler().set_tie_breaker(breaker);
  core::WorkloadConfig workload;
  workload.pattern = pattern;
  workload.value_size = value_size;
  workload.ops_per_client = ops;
  workload.seed = seed;
  const auto result = core::run_workload(bed, workload);
  return result.mean_latency_us();
}

/// Print one paper-style latency table: rows = sizes, columns = transports.
/// With csv=true, emits machine-readable blocks for tools/plot_figures.py.
inline void latency_table(const std::string& title, core::ClusterKind cluster,
                          core::OpPattern pattern,
                          const std::vector<core::TransportKind>& transports,
                          const std::vector<std::uint32_t>& sizes, bool csv = false,
                          std::uint64_t seed = 1) {
  if (csv) {
    std::printf("# %s\nsize", title.c_str());
    for (auto t : transports) std::printf(",%s", std::string(core::transport_name(t)).c_str());
    std::printf("\n");
    for (std::uint32_t size : sizes) {
      std::printf("%u", size);
      for (auto t : transports) {
        std::printf(",%.3f", latency_cell(cluster, t, pattern, size, 300, seed));
      }
      std::printf("\n");
    }
    std::printf("\n");
    return;
  }
  std::vector<std::string> columns{"size"};
  for (auto t : transports) columns.emplace_back(core::transport_name(t));
  Table table(title, columns);
  for (std::uint32_t size : sizes) {
    std::vector<std::string> row{format_size_label(size)};
    for (auto t : transports) {
      row.push_back(Table::num(latency_cell(cluster, t, pattern, size, 300, seed)));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n");
}

/// Run one aggregate-TPS cell (Fig. 6 style: N clients, pure Get).
inline double tps_cell(core::ClusterKind cluster, core::TransportKind transport,
                       std::uint32_t value_size, unsigned clients,
                       std::uint64_t ops = 2000, std::uint64_t seed = 1) {
  core::TestBedConfig config;
  config.cluster = cluster;
  config.transport = transport;
  config.num_clients = clients;
  core::TestBed bed(config);
  if (sim::TieBreaker* breaker = cell_tie_breaker()) bed.scheduler().set_tie_breaker(breaker);
  core::WorkloadConfig workload;
  workload.pattern = core::OpPattern::pure_get;
  workload.value_size = value_size;
  workload.ops_per_client = ops;
  workload.seed = seed;
  const auto result = core::run_workload(bed, workload);
  return result.tps();
}

/// Print one aggregate-TPS table: rows = client counts, columns =
/// transports, cells in thousands of ops/s (the Fig. 6 layout).
inline void tps_table(const std::string& title, core::ClusterKind cluster,
                      std::uint32_t value_size,
                      const std::vector<core::TransportKind>& transports,
                      const std::vector<unsigned>& client_counts, bool csv = false,
                      std::uint64_t seed = 1) {
  if (csv) {
    std::printf("# %s\nclients", title.c_str());
    for (auto t : transports) std::printf(",%s", std::string(core::transport_name(t)).c_str());
    std::printf("\n");
    for (unsigned clients : client_counts) {
      std::printf("%u", clients);
      for (auto t : transports) {
        std::printf(",%.1f", tps_cell(cluster, t, value_size, clients, 2000, seed) / 1000.0);
      }
      std::printf("\n");
    }
    std::printf("\n");
    return;
  }
  std::vector<std::string> columns{"clients"};
  for (auto t : transports) columns.emplace_back(core::transport_name(t));
  Table table(title, columns);
  for (unsigned clients : client_counts) {
    std::vector<std::string> row{std::to_string(clients)};
    for (auto t : transports) {
      row.push_back(Table::num(tps_cell(cluster, t, value_size, clients, 2000, seed) / 1000.0, 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n");
}

/// --csv anywhere on the command line switches a figure binary to CSV mode.
inline bool csv_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv") return true;
  }
  return false;
}

/// Value of `--flag <value>` on the command line, or "" when absent.
inline std::string arg_value(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == flag) return argv[i + 1];
  }
  return {};
}

/// Honor `--tie-breaker insertion`: install an insertion-mode
/// ScheduleExplorer on every subsequent cell's scheduler. CI diffs such a
/// run against the plain one — the hooked dispatch path must be
/// byte-identical to the unhooked default on the published figures
/// (DESIGN.md §17's tie-breaker-neutrality check).
inline void init_tie_breaker(int argc, char** argv) {
  const std::string v = arg_value(argc, argv, "--tie-breaker");
  if (v.empty()) return;
  if (v != "insertion") {
    std::fprintf(stderr, "unknown --tie-breaker %s (only: insertion)\n", v.c_str());
    std::exit(2);
  }
  static sim::ScheduleExplorer insertion;
  cell_tie_breaker() = &insertion;
}

/// `--seed <n>` on the command line, defaulting to the canonical seed 1
/// (the figure tables are reproduced bit-identically under the default).
inline std::uint64_t seed_arg(int argc, char** argv) {
  const std::string v = arg_value(argc, argv, "--seed");
  return v.empty() ? 1 : std::strtoull(v.c_str(), nullptr, 10);
}

/// Write the accumulated metrics registry as JSON to `--metrics-json
/// <file>` if given. Call once, after all cells ran; the registry
/// aggregates across every TestBed created by the process.
inline void dump_metrics_if_requested(int argc, char** argv) {
  const std::string path = arg_value(argc, argv, "--metrics-json");
  if (path.empty()) return;
  const std::string json = obs::registry().to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write metrics to %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "metrics written to %s\n", path.c_str());
}

/// Enable the attribution profiler when `--profile <file>` is given;
/// returns the path ("" when profiling is off — the default, keeping the
/// figure tables byte-identical). The caller runs its scenario and then
/// calls write_profile().
inline std::string profile_path(int argc, char** argv) {
  const std::string path = arg_value(argc, argv, "--profile");
  if (!path.empty()) obs::profiler().enable();
  return path;
}

/// Write the profiler dump: `<path>` gets the rmc-prof/1 JSON report and
/// `<path>.folded` the collapsed stacks (flamegraph.pl-compatible).
inline void write_profile(const std::string& path) {
  if (path.empty()) return;
  obs::profiler().disable();
  const std::string json = obs::profiler().to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write profile to %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  const std::string folded_path = path + ".folded";
  const std::string folded = obs::profiler().to_collapsed();
  if (std::FILE* ff = std::fopen(folded_path.c_str(), "w")) {
    std::fwrite(folded.data(), 1, folded.size(), ff);
    std::fclose(ff);
  }
  std::fprintf(stderr, "profile written to %s (+%s)\n", path.c_str(), folded_path.c_str());
}

/// Write the per-op latency span histograms (mc.latency.*) as JSON to
/// `--latency-json <file>` if given. Only timers that actually recorded
/// samples appear; stages a transport never exercises are absent.
inline void dump_latency_if_requested(int argc, char** argv) {
  const std::string path = arg_value(argc, argv, "--latency-json");
  if (path.empty()) return;
  static constexpr const char* kOps[] = {"get", "set", "mget"};
  static constexpr const char* kStages[] = {"build", "wait", "complete", "total"};
  std::string out = "{\"schema\":\"rmc-latency/1\"";
  for (const char* op : kOps) {
    for (const char* stage : kStages) {
      const std::string name = std::string("mc.latency.") + op + "." + stage;
      const obs::Timer* t = obs::registry().find_timer(name);
      if (t == nullptr || t->hist().count() == 0) continue;
      const LatencyHistogram& h = t->hist();
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    ",\"%s\":{\"count\":%llu,\"mean_ns\":%llu,\"p50_ns\":%llu,"
                    "\"p95_ns\":%llu,\"p99_ns\":%llu,\"p999_ns\":%llu,\"max_ns\":%llu}",
                    name.c_str(), static_cast<unsigned long long>(h.count()),
                    static_cast<unsigned long long>(h.mean()),
                    static_cast<unsigned long long>(h.percentile(0.50)),
                    static_cast<unsigned long long>(h.percentile(0.95)),
                    static_cast<unsigned long long>(h.percentile(0.99)),
                    static_cast<unsigned long long>(h.percentile(0.999)),
                    static_cast<unsigned long long>(h.max()));
      out += buf;
    }
  }
  out += "}";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write latency spans to %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "latency spans written to %s\n", path.c_str());
}

/// Enable the sim-time tracer when `--trace <file>` is given; returns the
/// path ("" when tracing is off). The caller runs its traced scenario and
/// then calls write_trace().
inline std::string trace_path(int argc, char** argv) {
  const std::string path = arg_value(argc, argv, "--trace");
  if (!path.empty()) obs::tracer().enable();
  return path;
}

inline void write_trace(const std::string& path) {
  if (path.empty()) return;
  if (obs::tracer().write(path)) {
    std::fprintf(stderr, "trace written to %s (%zu events, %zu tracks)\n", path.c_str(),
                 obs::tracer().event_count(), obs::tracer().track_count());
  } else {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
  }
  obs::tracer().disable();
}

}  // namespace rmc::bench
