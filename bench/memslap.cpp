// memslap — a load-generation CLI in the spirit of the libmemcached tool
// the paper's benchmarks are modeled on (§VI: "Our benchmarks are inspired
// by the popular memslap benchmark... we created our suite of benchmarks
// that perform similar evaluation, but use the standard libmemcached C
// API"). Unlike the original, the workload runs against the simulated
// testbed, so results are deterministic.
//
// usage:
//   memslap [--cluster a|b] [--transport ucr|sdp|ipoib|toe|1ge|roce|iwarp]
//           [--clients N] [--ops N] [--size BYTES]
//           [--mix get|set|90:10|50:50] [--workers N] [--seed N]
//
// With no arguments, runs a representative sweep.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.hpp"
#include "core/workload.hpp"
#include "obs/metrics.hpp"

using namespace rmc;

namespace {

struct Options {
  core::ClusterKind cluster = core::ClusterKind::cluster_b;
  core::TransportKind transport = core::TransportKind::ucr_verbs;
  unsigned clients = 1;
  std::uint64_t ops = 1000;
  std::uint32_t size = 4096;
  core::OpPattern mix = core::OpPattern::pure_get;
  unsigned workers = 4;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: memslap [--cluster a|b] [--transport ucr|sdp|ipoib|toe|1ge|roce|iwarp]\n"
               "               [--clients N] [--ops N] [--size BYTES]\n"
               "               [--mix get|set|90:10|50:50] [--workers N] [--seed N]\n");
  std::exit(2);
}

bool parse_options(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (flag == "--cluster") {
      const std::string v = next();
      if (v == "a") {
        opt.cluster = core::ClusterKind::cluster_a;
      } else if (v == "b") {
        opt.cluster = core::ClusterKind::cluster_b;
      } else {
        usage();
      }
    } else if (flag == "--transport") {
      const std::string v = next();
      if (v == "ucr") opt.transport = core::TransportKind::ucr_verbs;
      else if (v == "sdp") opt.transport = core::TransportKind::sdp;
      else if (v == "ipoib") opt.transport = core::TransportKind::ipoib;
      else if (v == "toe") opt.transport = core::TransportKind::toe_10ge;
      else if (v == "1ge") opt.transport = core::TransportKind::tcp_1ge;
      else if (v == "roce") opt.transport = core::TransportKind::ucr_roce;
      else if (v == "iwarp") opt.transport = core::TransportKind::ucr_iwarp;
      else usage();
    } else if (flag == "--clients") {
      opt.clients = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (flag == "--ops") {
      opt.ops = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--size") {
      opt.size = static_cast<std::uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (flag == "--mix") {
      const std::string v = next();
      if (v == "get") opt.mix = core::OpPattern::pure_get;
      else if (v == "set") opt.mix = core::OpPattern::pure_set;
      else if (v == "90:10") opt.mix = core::OpPattern::non_interleaved;
      else if (v == "50:50") opt.mix = core::OpPattern::interleaved;
      else usage();
    } else if (flag == "--workers") {
      opt.workers = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else {
      usage();
    }
  }
  return true;
}

void run_and_report(const Options& opt) {
  if (!core::transport_available(opt.cluster, opt.transport)) {
    std::printf("%s is not available on %s (the paper's testbed lacked it)\n",
                std::string(core::transport_name(opt.transport)).c_str(),
                std::string(core::cluster_name(opt.cluster)).c_str());
    return;
  }
  // The span registry is process-global; zero it so each report's stage
  // percentiles reflect this run only (the sweep calls this repeatedly).
  obs::registry().reset();
  core::TestBedConfig config;
  config.cluster = opt.cluster;
  config.transport = opt.transport;
  config.num_clients = opt.clients;
  config.server.workers = opt.workers;
  core::TestBed bed(config);

  core::WorkloadConfig workload;
  workload.pattern = opt.mix;
  workload.value_size = opt.size;
  workload.ops_per_client = opt.ops;
  workload.seed = opt.seed;
  const auto result = core::run_workload(bed, workload);

  std::printf("%s, %s, %u client(s) x %llu ops, %u B values, %s, %u workers\n",
              std::string(core::cluster_name(opt.cluster)).c_str(),
              std::string(core::transport_name(opt.transport)).c_str(), opt.clients,
              static_cast<unsigned long long>(opt.ops), opt.size,
              std::string(core::pattern_name(opt.mix)).c_str(), opt.workers);
  std::printf("  ops completed:   %llu\n",
              static_cast<unsigned long long>(result.total_ops));
  std::printf("  mean latency:    %.2f us", result.mean_latency_us());
  if (result.set_latency.count() && result.get_latency.count()) {
    std::printf("   (set %.2f / get %.2f)", result.set_latency.mean() / 1e3,
                result.get_latency.mean() / 1e3);
  }
  std::printf("\n");
  std::printf("  p50 / p95 / p99: %.2f / %.2f / %.2f us\n",
              to_us(result.all_latency.percentile(0.5)),
              to_us(result.all_latency.percentile(0.95)),
              to_us(result.all_latency.percentile(0.99)));
  // Stage decomposition from the client-side span registry: where a GET's
  // total went (request build, fabric + server turnaround, completion).
  static constexpr const char* kStageNames[] = {"build", "wait", "complete", "total"};
  static constexpr const char* kStageKeys[] = {"mc.latency.get.build", "mc.latency.get.wait",
                                               "mc.latency.get.complete",
                                               "mc.latency.get.total"};
  bool have_spans = false;
  for (std::size_t i = 0; i < 4; ++i) {
    const obs::Timer* t = obs::registry().find_timer(kStageKeys[i]);
    if (t == nullptr || t->hist().count() == 0) continue;
    if (!have_spans) {
      std::printf("  get stage p50/p99 us:");
      have_spans = true;
    }
    std::printf("  %s %.2f/%.2f", kStageNames[i], to_us(t->hist().percentile(0.5)),
                to_us(t->hist().percentile(0.99)));
  }
  if (have_spans) std::printf("\n");
  std::printf("  aggregate rate:  %.1f K ops/s\n\n", result.tps() / 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (argc > 1) {
    parse_options(argc, argv, opt);
    run_and_report(opt);
    return 0;
  }

  // Default: a representative sweep (the quick look a first-time user wants).
  std::printf("=== memslap: representative sweep (pass --help-style flags to customize) ===\n\n");
  for (auto transport : {core::TransportKind::ucr_verbs, core::TransportKind::sdp,
                         core::TransportKind::ipoib}) {
    Options o;
    o.transport = transport;
    o.ops = 500;
    run_and_report(o);
  }
  Options multi;
  multi.clients = 16;
  multi.size = 4;
  multi.ops = 1000;
  run_and_report(multi);
  return 0;
}
