// Ablation: the eager/rendezvous threshold (§V fixes one network buffer =
// 8 KB). Sweeping the buffer size shows the tradeoff the designers
// balanced: small buffers force RDMA-read rendezvous (extra half round
// trip) onto medium messages; huge buffers waste registered memory and
// make the target memcpy the bottleneck.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "core/workload.hpp"

using namespace rmc;

namespace {

double latency_with_threshold(std::uint32_t eager_limit, std::uint32_t value_size) {
  core::TestBedConfig config;
  config.cluster = core::ClusterKind::cluster_b;
  config.transport = core::TransportKind::ucr_verbs;
  config.ucr.eager_limit = eager_limit;
  core::TestBed bed(config);
  core::WorkloadConfig workload;
  workload.pattern = core::OpPattern::pure_get;
  workload.value_size = value_size;
  workload.ops_per_client = 300;
  return core::run_workload(bed, workload).mean_latency_us();
}

}  // namespace

int main() {
  std::printf("=== Ablation: UCR eager/rendezvous threshold (Cluster B, 100%% Get) ===\n\n");
  const std::vector<std::uint32_t> thresholds{1024, 2048, 4096, 8192, 16384, 32768};
  const std::vector<std::uint32_t> sizes{64, 512, 2048, 4096, 8192, 16384};

  std::vector<std::string> columns{"value size"};
  for (auto th : thresholds) columns.push_back("buf=" + format_size_label(th));
  Table t("Get latency (us) vs eager buffer size", columns);
  for (auto size : sizes) {
    std::vector<std::string> row{format_size_label(size)};
    for (auto th : thresholds) {
      row.push_back(Table::num(latency_with_threshold(th, size)));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nreading: below the diagonal the value fits the buffer (eager, one\n"
              "transaction); above it UCR falls back to rendezvous (header, RDMA\n"
              "read, ack) and pays roughly an extra round trip — the paper's 8 KB\n"
              "choice keeps typical memcached items on the eager path.\n");
  return 0;
}
