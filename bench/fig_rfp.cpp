// RFP server-bypass RPC evaluation (DESIGN.md §16): the paper's RPC
// path versus one-sided RDMA-read GETs (§9) versus remote-fetch rings
// (RFP) across value sizes on both cluster profiles — plus an RPC vs
// RFP SET sweep, the case one-sided reads cannot accelerate at all.
//
// Expected shape: RFP beats RPC at small sizes in BOTH directions (the
// data path is two inbound RDMA Writes; no SEND, no receive buffer, no
// CQ wake-up on either side) while keeping the server CPU executing the
// op — so unlike the one-sided path it accelerates SETs, arithmetic and
// deletes too. Oversized SETs are caught client-side and match the RPC
// line exactly; oversized GET *replies* are only discovered at the
// server, so the 4K GET row pays a ring probe plus the RPC re-run —
// the visible price of mis-sizing slots for the value distribution.
//
// `--json <file>` records the cells + headline for tools/run_benches.py;
// `--seed <n>` reruns under a different deterministic workload stream.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fig_common.hpp"

using namespace rmc;
using namespace rmc::bench;

namespace {

using Mode = mc::ClientBehavior::Mode;

double run_mode(core::ClusterKind cluster, Mode mode, core::OpPattern pattern,
                std::uint32_t value_size, std::uint64_t seed) {
  core::TestBedConfig config;
  config.cluster = cluster;
  config.transport = core::TransportKind::ucr_verbs;
  config.client.mode = mode;
  core::TestBed bed(config);
  core::WorkloadConfig workload;
  workload.pattern = pattern;
  workload.value_size = value_size;
  workload.ops_per_client = 400;
  workload.seed = seed;
  return core::run_workload(bed, workload).mean_latency_us();
}

struct GetCell {
  double rpc_us = 0;
  double one_us = 0;
  double rfp_us = 0;
};

struct SetCell {
  double rpc_us = 0;
  double rfp_us = 0;
};

std::vector<GetCell> get_sweep(core::ClusterKind cluster, const std::vector<std::uint32_t>& sizes,
                               std::uint64_t seed, const char* title, bool csv) {
  std::vector<GetCell> cells;
  for (std::uint32_t size : sizes) {
    GetCell cell;
    cell.rpc_us = run_mode(cluster, Mode::rpc, core::OpPattern::pure_get, size, seed);
    cell.one_us = run_mode(cluster, Mode::onesided_get, core::OpPattern::pure_get, size, seed);
    cell.rfp_us = run_mode(cluster, Mode::rfp, core::OpPattern::pure_get, size, seed);
    cells.push_back(cell);
  }
  if (csv) {
    std::printf("# %s\nsize,rpc_us,onesided_us,rfp_us\n", title);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::printf("%u,%.3f,%.3f,%.3f\n", sizes[i], cells[i].rpc_us, cells[i].one_us,
                  cells[i].rfp_us);
    }
    std::printf("\n");
  } else {
    Table table(title, {"size", "rpc us", "1-sided us", "rfp us", "rfp speedup"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.add_row({format_size_label(sizes[i]), Table::num(cells[i].rpc_us),
                     Table::num(cells[i].one_us), Table::num(cells[i].rfp_us),
                     Table::num(cells[i].rpc_us / cells[i].rfp_us, 2) + "x"});
    }
    table.print();
    std::printf("\n");
  }
  return cells;
}

std::vector<SetCell> set_sweep(core::ClusterKind cluster, const std::vector<std::uint32_t>& sizes,
                               std::uint64_t seed, const char* title, bool csv) {
  std::vector<SetCell> cells;
  for (std::uint32_t size : sizes) {
    SetCell cell;
    cell.rpc_us = run_mode(cluster, Mode::rpc, core::OpPattern::pure_set, size, seed);
    cell.rfp_us = run_mode(cluster, Mode::rfp, core::OpPattern::pure_set, size, seed);
    cells.push_back(cell);
  }
  if (csv) {
    std::printf("# %s\nsize,rpc_us,rfp_us\n", title);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::printf("%u,%.3f,%.3f\n", sizes[i], cells[i].rpc_us, cells[i].rfp_us);
    }
    std::printf("\n");
  } else {
    Table table(title, {"size", "rpc us", "rfp us", "rfp speedup"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.add_row({format_size_label(sizes[i]), Table::num(cells[i].rpc_us),
                     Table::num(cells[i].rfp_us),
                     Table::num(cells[i].rpc_us / cells[i].rfp_us, 2) + "x"});
    }
    table.print();
    std::printf("\n");
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = csv_mode(argc, argv);
  const std::string profile_file = profile_path(argc, argv);
  const std::uint64_t seed = seed_arg(argc, argv);
  const std::vector<std::uint32_t> sizes{4, 64, 256, 1024, 4096};

  std::printf("=== RFP rings: RPC vs one-sided Read vs remote-fetch ===\n\n");
  const auto get_ddr =
      get_sweep(core::ClusterKind::cluster_a, sizes, seed, "Cluster A (DDR) pure Get", csv);
  const auto get_qdr =
      get_sweep(core::ClusterKind::cluster_b, sizes, seed, "Cluster B (QDR) pure Get", csv);
  const auto set_ddr =
      set_sweep(core::ClusterKind::cluster_a, sizes, seed, "Cluster A (DDR) pure Set", csv);
  const auto set_qdr =
      set_sweep(core::ClusterKind::cluster_b, sizes, seed, "Cluster B (QDR) pure Set", csv);

  // Headlines: the acceptance criteria — RFP beats the classic RPC on
  // small-value GETs AND SETs on the QDR profile. Index 1 is 64 B.
  const GetCell& ghead = get_qdr[1];
  const SetCell& shead = set_qdr[1];
  std::printf("headline: QDR 64B get RPC=%.3fus rfp=%.3fus (%.2fx); set RPC=%.3fus rfp=%.3fus (%.2fx)\n",
              ghead.rpc_us, ghead.rfp_us, ghead.rpc_us / ghead.rfp_us, shead.rpc_us, shead.rfp_us,
              shead.rpc_us / shead.rfp_us);

  const std::string json_path = arg_value(argc, argv, "--json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    auto dump_get = [&](const char* name, const std::vector<GetCell>& cells) {
      std::fprintf(f, "  \"%s\": {", name);
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::fprintf(f, "%s\n    \"%u\": {\"rpc_us\": %.3f, \"onesided_us\": %.3f, \"rfp_us\": %.3f}",
                     i ? "," : "", sizes[i], cells[i].rpc_us, cells[i].one_us, cells[i].rfp_us);
      }
      std::fprintf(f, "\n  }");
    };
    auto dump_set = [&](const char* name, const std::vector<SetCell>& cells) {
      std::fprintf(f, "  \"%s\": {", name);
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::fprintf(f, "%s\n    \"%u\": {\"rpc_us\": %.3f, \"rfp_us\": %.3f}", i ? "," : "",
                     sizes[i], cells[i].rpc_us, cells[i].rfp_us);
      }
      std::fprintf(f, "\n  }");
    };
    std::fprintf(f, "{\n");
    dump_get("get_ddr", get_ddr);
    std::fprintf(f, ",\n");
    dump_get("get_qdr", get_qdr);
    std::fprintf(f, ",\n");
    dump_set("set_ddr", set_ddr);
    std::fprintf(f, ",\n");
    dump_set("set_qdr", set_qdr);
    std::fprintf(f,
                 ",\n  \"headline\": {\"rfp_get_64b_us\": %.3f, \"rpc_get_64b_us\": %.3f, "
                 "\"rfp_set_64b_us\": %.3f, \"rpc_set_64b_us\": %.3f}\n}\n",
                 ghead.rfp_us, ghead.rpc_us, shead.rfp_us, shead.rpc_us);
    std::fclose(f);
    std::fprintf(stderr, "json written to %s\n", json_path.c_str());
  }

  // --trace <file>: one representative traced cell (RFP 64 B GETs on
  // QDR) with the same op count; the frame path is what's interesting.
  const std::string trace_file = arg_value(argc, argv, "--trace");
  if (!trace_file.empty()) {
    obs::tracer().enable();
    const double traced =
        run_mode(core::ClusterKind::cluster_b, Mode::rfp, core::OpPattern::pure_get, 64, seed);
    std::printf("traced cell: QDR 64B rfp=%.3fus\n", traced);
    write_trace(trace_file);
  }
  dump_metrics_if_requested(argc, argv);
  dump_latency_if_requested(argc, argv);
  write_profile(profile_file);
  return 0;
}
