// Future-work preview (§VII): "we aim to leverage the Unreliable Datagram
// transport to scale up the total number of clients that can be handled by
// a single server". With RC endpoints the server holds one QP per client;
// with UD endpoints every client shares ONE datagram QP. This bench runs
// 4-byte memcached Gets at growing client counts over both endpoint types
// and reports aggregate TPS next to the server's QP count — the state that
// limits RC scalability on real HCAs (QP context cache misses).
#include <cstdio>

#include "common/table.hpp"
#include "core/workload.hpp"

using namespace rmc;

namespace {

struct Cell {
  double ktps = 0;
  std::size_t server_qps = 0;
};

Cell run_one(unsigned clients, bool unreliable) {
  core::TestBedConfig config;
  config.cluster = core::ClusterKind::cluster_b;
  config.transport = core::TransportKind::ucr_verbs;
  config.num_clients = clients;
  config.client.unreliable_ucr = unreliable;
  core::TestBed bed(config);
  core::WorkloadConfig workload;
  workload.pattern = core::OpPattern::pure_get;
  workload.value_size = 4;
  workload.ops_per_client = 600;
  const auto result = core::run_workload(bed, workload);
  return {result.tps() / 1000.0, bed.server_hca()->qp_count()};
}

}  // namespace

int main() {
  std::printf("=== Future work preview: UD endpoint scalability (Cluster B) ===\n\n");
  Table t("4-byte Gets: aggregate KTPS and server QP count",
          {"clients", "RC KTPS", "RC server QPs", "UD KTPS", "UD server QPs"});
  for (unsigned clients : {8u, 32u, 96u}) {
    const Cell rc = run_one(clients, false);
    const Cell ud = run_one(clients, true);
    t.add_row({std::to_string(clients), Table::num(rc.ktps, 1),
               std::to_string(rc.server_qps), Table::num(ud.ktps, 1),
               std::to_string(ud.server_qps)});
  }
  t.print();
  std::printf("\nreading: throughput is on par, but the UD server holds a single\n"
              "datagram QP regardless of client count, where RC state grows\n"
              "linearly — the §VII scalability argument.\n");
  return 0;
}
