// Google-benchmark microbenchmarks of the storage-engine components: slab
// allocation, hash table operations under churn and rehash, LRU-driven
// eviction, text protocol parse/encode, and the MD5/key hashing the client
// uses. These run in wall-clock time (no simulator involved).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/md5.hpp"
#include "common/rng.hpp"
#include "memcached/protocol.hpp"
#include "memcached/store.hpp"

namespace rmc::mc {
namespace {

std::span<const std::byte> val(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// ---------------------------------------------------------------- slab ----

void BM_SlabAllocFree(benchmark::State& state) {
  SlabAllocator slabs;
  const auto cls = *slabs.class_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto chunk = slabs.allocate(cls);
    benchmark::DoNotOptimize(*chunk);
    slabs.free(cls, *chunk);
  }
}
BENCHMARK(BM_SlabAllocFree)->Arg(100)->Arg(1024)->Arg(65536);

// --------------------------------------------------------------- store ----

void BM_StoreSet(benchmark::State& state) {
  ItemStore store;
  const std::string value(static_cast<std::size_t>(state.range(0)), 'v');
  Rng rng(1);
  std::vector<std::string> keys;
  for (int i = 0; i < 1024; ++i) keys.push_back("key:" + std::to_string(i));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.store(SetMode::set, keys[i++ & 1023], val(value), 0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreSet)->Arg(64)->Arg(1024)->Arg(16384);

void BM_StoreGetHit(benchmark::State& state) {
  ItemStore store;
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i) {
    keys.push_back("key:" + std::to_string(i));
    (void)store.store(SetMode::set, keys.back(), val("value"), 0, 0);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreGetHit);

void BM_StoreGetMiss(benchmark::State& state) {
  ItemStore store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get("absent-key"));
  }
}
BENCHMARK(BM_StoreGetMiss);

void BM_StoreChurnWithEviction(benchmark::State& state) {
  StoreConfig config;
  config.slabs.memory_limit = 4 * 1024 * 1024;
  ItemStore store(config);
  const std::string value(1024, 'x');
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.store(SetMode::set, "churn:" + std::to_string(i++), val(value), 0, 0));
  }
  state.counters["evictions"] =
      benchmark::Counter(static_cast<double>(store.stats().evictions));
}
BENCHMARK(BM_StoreChurnWithEviction);

// ------------------------------------------------------------ protocol ----

void BM_ParseSetRequest(benchmark::State& state) {
  const std::string wire = "set somekey 42 0 64\r\n" + std::string(64, 'd') + "\r\n";
  for (auto _ : state) {
    proto::RequestParser parser;
    parser.feed({reinterpret_cast<const std::byte*>(wire.data()), wire.size()});
    benchmark::DoNotOptimize(parser.next());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_ParseSetRequest);

void BM_ParseGetRequest(benchmark::State& state) {
  const std::string wire = "get somekey\r\n";
  for (auto _ : state) {
    proto::RequestParser parser;
    parser.feed({reinterpret_cast<const std::byte*>(wire.data()), wire.size()});
    benchmark::DoNotOptimize(parser.next());
  }
}
BENCHMARK(BM_ParseGetRequest);

void BM_EncodeValuesResponse(benchmark::State& state) {
  proto::Response resp;
  resp.type = proto::Response::Type::values;
  proto::Value v;
  v.key = "somekey";
  v.data.resize(static_cast<std::size_t>(state.range(0)));
  resp.values.push_back(std::move(v));
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::encode_response(resp, false));
  }
}
BENCHMARK(BM_EncodeValuesResponse)->Arg(64)->Arg(4096);

// ------------------------------------------------------------- hashing ----

void BM_KeyHash(benchmark::State& state) {
  const auto kind = static_cast<HashKind>(state.range(0));
  const std::string key = "user:12345:profile:settings";
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash_key(kind, key));
  }
}
BENCHMARK(BM_KeyHash)
    ->Arg(static_cast<int>(HashKind::default_jenkins))
    ->Arg(static_cast<int>(HashKind::fnv1a_64))
    ->Arg(static_cast<int>(HashKind::crc))
    ->Arg(static_cast<int>(HashKind::md5));

void BM_Md5(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(md5(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_Md5)->Arg(16)->Arg(4096);

}  // namespace
}  // namespace rmc::mc

BENCHMARK_MAIN();
