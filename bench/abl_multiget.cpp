// Multiget batching ablation. Two questions:
//
//  1. Width sweep (headline): what does true server-side multiget buy over
//     N sequential GETs on one QDR server? One request AM carries the whole
//     key block, the server answers in scatter-gather chunks under one
//     doorbell, and the client wakes once per batch-drained reply instead
//     of once per key. The headline `multiget_64key_us` (tracked in
//     BENCH_7.json) is the batched 64-key latency; acceptance is >= 1.5x
//     over the sequential baseline.
//
//  2. The "multiget hole" (the paper's reference [2], Facebook): fetching
//     64 keys spread over S servers costs one round trip per server, so
//     adding servers stops helping a multiget-heavy workload. UCR's cheap
//     per-server round trip pushes the turn much further out than SDP.
//
// `--json <file>` records the sweep + headline for tools/run_benches.py;
// `--profile <file>` dumps the sim-time attribution of the 64-key cell.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fig_common.hpp"
#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "simnet/netparams.hpp"

using namespace rmc;
using namespace rmc::literals;

namespace {

std::span<const std::byte> val(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// ------------------------------------------------- width sweep (1 server)

/// Mean latency (us) of fetching `width` keys from one QDR UCR server:
/// batched = one mget_into round; sequential = `width` dependent GETs.
double width_cell(int width, bool batched) {
  sim::Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host client_host{sched, 100, "web", 8};
  verbs::Hca client_hca{sched, fabric, client_host};
  ucr::Runtime client_ucr{client_hca};
  mc::Client client{sched, client_host};

  sim::Host server_host{sched, 1, "mc", 8};
  verbs::Hca server_hca{sched, fabric, server_host};
  ucr::Runtime server_ucr{server_hca};
  mc::Server server{sched, server_host, mc::ServerConfig{}};
  server.attach_ucr_frontend(server_ucr);
  client.add_server_ucr(client_ucr, server_ucr.addr(), 11211);

  constexpr int kRounds = 100;
  sim::Time total = 0;
  sched.spawn([](sim::Scheduler& sch, mc::Client& cli, int w, bool batch,
                 sim::Time& out) -> sim::Task<> {
    (void)co_await cli.connect_all();
    std::vector<std::string> keys;
    for (int k = 0; k < w; ++k) {
      keys.push_back("page:object:" + std::to_string(k));
      (void)co_await cli.set(keys.back(), val("value-fragment-of-64-bytes-padding-"
                                              "padding-padding-padd:" +
                                              std::to_string(k)));
    }
    std::vector<std::string_view> views(keys.begin(), keys.end());
    std::vector<mc::MgetSlot> slots(keys.size());
    const sim::Time start = sch.now();
    for (int r = 0; r < kRounds; ++r) {
      if (batch) {
        (void)co_await cli.mget_into(views, slots);
      } else {
        for (const auto& key : views) (void)co_await cli.get(key);
      }
    }
    out = sch.now() - start;
  }(sched, client, width, batched, total));
  sched.run();
  return to_us(total) / kRounds;
}

// --------------------------------------------- pool growth (64-key mget)

double mget_latency_us(int servers, bool use_ucr) {
  sim::Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host client_host{sched, 100, "web", 8};
  verbs::Hca client_hca{sched, fabric, client_host};
  ucr::Runtime client_ucr{client_hca};
  sock::NetStack client_sock{sched, fabric, client_host, sock::sdp_ib()};
  mc::Client client{sched, client_host};

  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<std::unique_ptr<verbs::Hca>> hcas;
  std::vector<std::unique_ptr<ucr::Runtime>> runtimes;
  std::vector<std::unique_ptr<sock::NetStack>> stacks;
  std::vector<std::unique_ptr<mc::Server>> srv;
  for (int i = 0; i < servers; ++i) {
    hosts.push_back(std::make_unique<sim::Host>(sched, i, "mc", 8));
    srv.push_back(std::make_unique<mc::Server>(sched, *hosts.back(), mc::ServerConfig{}));
    if (use_ucr) {
      hcas.push_back(std::make_unique<verbs::Hca>(sched, fabric, *hosts.back()));
      runtimes.push_back(std::make_unique<ucr::Runtime>(*hcas.back()));
      srv.back()->attach_ucr_frontend(*runtimes.back());
      client.add_server_ucr(client_ucr, runtimes.back()->addr(), 11211);
    } else {
      stacks.push_back(
          std::make_unique<sock::NetStack>(sched, fabric, *hosts.back(), sock::sdp_ib()));
      srv.back()->attach_socket_frontend(*stacks.back());
      client.add_server_socket(client_sock, stacks.back()->addr(), 11211);
    }
  }

  constexpr int kKeys = 64;
  constexpr int kRounds = 100;
  sim::Time total = 0;
  sched.spawn([](sim::Scheduler& sch, mc::Client& cli, sim::Time& total2) -> sim::Task<> {
    (void)co_await cli.connect_all();
    std::vector<std::string> keys;
    for (int k = 0; k < kKeys; ++k) {
      keys.push_back("page:object:" + std::to_string(k));
      (void)co_await cli.set(keys.back(), val("fragment"));
    }
    const sim::Time start = sch.now();
    for (int r = 0; r < kRounds; ++r) {
      auto result = co_await cli.mget(keys);
      (void)result;
    }
    total2 = sch.now() - start;
  }(sched, client, total));
  sched.run();
  return to_us(total) / kRounds;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Multiget batching (QDR) ===\n\n");

  const std::vector<int> widths{1, 2, 4, 8, 16, 32, 64, 128, 256};
  std::vector<double> batched_us;
  std::vector<double> sequential_us;
  Table sweep("mget width sweep, 1 server (us)",
              {"keys", "batched mget", "sequential gets", "speedup"});
  for (int w : widths) {
    batched_us.push_back(width_cell(w, true));
    sequential_us.push_back(width_cell(w, false));
    sweep.add_row({std::to_string(w), Table::num(batched_us.back()),
                   Table::num(sequential_us.back()),
                   Table::num(sequential_us.back() / batched_us.back(), 2) + "x"});
  }
  sweep.print();

  // Headline cell: 64 keys (index 6). The whole point of the batching
  // design is that this is >= 1.5x the sequential baseline.
  const double head_batched = batched_us[6];
  const double head_sequential = sequential_us[6];
  std::printf("\nheadline: QDR 64-key mget batched=%.3fus sequential=%.3fus (%.2fx)\n\n",
              head_batched, head_sequential, head_sequential / head_batched);

  std::printf("=== Multiget across a growing pool (64 keys per request) ===\n\n");
  Table t("mget latency (us) vs pool size", {"servers", "UCR-IB", "SDP"});
  for (int servers : {1, 2, 4, 8, 16}) {
    t.add_row({std::to_string(servers), Table::num(mget_latency_us(servers, true)),
               Table::num(mget_latency_us(servers, false))});
  }
  t.print();
  std::printf("\nreading: one request AM now carries the whole key block and the\n"
              "server answers in scatter-gather chunks, so the single-server case\n"
              "no longer pays a per-key round trip at all. Spreading 64 keys over\n"
              "a few servers still helps SDP (smaller per-server batches fetched\n"
              "in parallel), but past that every request touches nearly every\n"
              "server and the per-server fixed cost takes over — Facebook's\n"
              "'multiget hole' [2]. UCR's batched round trip pushes the turn much\n"
              "further out than the sockets stack.\n");

  const std::string json_path = rmc::bench::arg_value(argc, argv, "--json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"sweep\": {");
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::fprintf(f, "%s\n    \"%d\": {\"batched_us\": %.3f, \"sequential_us\": %.3f}",
                   i ? "," : "", widths[i], batched_us[i], sequential_us[i]);
    }
    std::fprintf(f,
                 "\n  },\n  \"headline\": {\"multiget_64key_us\": %.3f, "
                 "\"multiget_64key_sequential_us\": %.3f}\n}\n",
                 head_batched, head_sequential);
    std::fclose(f);
    std::fprintf(stderr, "json written to %s\n", json_path.c_str());
  }

  // --profile <file>: sim-time attribution of one batched 64-key cell
  // (where do the 64-key microseconds go once batching is on?).
  const std::string prof = rmc::bench::profile_path(argc, argv);
  if (!prof.empty()) {
    (void)width_cell(64, true);
    rmc::bench::write_profile(prof);
  }
  // --metrics-json <file>: the batching layers' own metrics across every
  // cell above (mc.mget.batch_size, verbs.doorbell.batched_wrs,
  // ucr.cq.drain_batch).
  rmc::bench::dump_metrics_if_requested(argc, argv);
  return 0;
}
