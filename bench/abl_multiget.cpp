// The "multiget hole" (the paper's reference [2], Facebook): fetching N
// keys spread over S servers costs one round trip per server, so adding
// servers stops helping a multiget-heavy workload — each request still
// touches almost every server. This bench fetches 64 keys through one
// client as the pool grows, over UCR (pipelined AMs) and over SDP sockets
// (one pipelined text mget per server).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "simnet/netparams.hpp"

using namespace rmc;
using namespace rmc::literals;

namespace {

std::span<const std::byte> val(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

double mget_latency_us(int servers, bool use_ucr) {
  sim::Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host client_host{sched, 100, "web", 8};
  verbs::Hca client_hca{sched, fabric, client_host};
  ucr::Runtime client_ucr{client_hca};
  sock::NetStack client_sock{sched, fabric, client_host, sock::sdp_ib()};
  mc::Client client{sched, client_host};

  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<std::unique_ptr<verbs::Hca>> hcas;
  std::vector<std::unique_ptr<ucr::Runtime>> runtimes;
  std::vector<std::unique_ptr<sock::NetStack>> stacks;
  std::vector<std::unique_ptr<mc::Server>> srv;
  for (int i = 0; i < servers; ++i) {
    hosts.push_back(std::make_unique<sim::Host>(sched, i, "mc", 8));
    srv.push_back(std::make_unique<mc::Server>(sched, *hosts.back(), mc::ServerConfig{}));
    if (use_ucr) {
      hcas.push_back(std::make_unique<verbs::Hca>(sched, fabric, *hosts.back()));
      runtimes.push_back(std::make_unique<ucr::Runtime>(*hcas.back()));
      srv.back()->attach_ucr_frontend(*runtimes.back());
      client.add_server_ucr(client_ucr, runtimes.back()->addr(), 11211);
    } else {
      stacks.push_back(
          std::make_unique<sock::NetStack>(sched, fabric, *hosts.back(), sock::sdp_ib()));
      srv.back()->attach_socket_frontend(*stacks.back());
      client.add_server_socket(client_sock, stacks.back()->addr(), 11211);
    }
  }

  constexpr int kKeys = 64;
  constexpr int kRounds = 100;
  sim::Time total = 0;
  sched.spawn([](sim::Scheduler& sch, mc::Client& cli, sim::Time& total2) -> sim::Task<> {
    (void)co_await cli.connect_all();
    std::vector<std::string> keys;
    for (int k = 0; k < kKeys; ++k) {
      keys.push_back("page:object:" + std::to_string(k));
      (void)co_await cli.set(keys.back(), val("fragment"));
    }
    const sim::Time start = sch.now();
    for (int r = 0; r < kRounds; ++r) {
      auto result = co_await cli.mget(keys);
      (void)result;
    }
    total2 = sch.now() - start;
  }(sched, client, total));
  sched.run();
  return to_us(total) / kRounds;
}

}  // namespace

int main() {
  std::printf("=== Multiget across a growing pool (64 keys per request) ===\n\n");
  Table t("mget latency (us) vs pool size", {"servers", "UCR-IB", "SDP"});
  for (int servers : {1, 2, 4, 8, 16}) {
    t.add_row({std::to_string(servers), Table::num(mget_latency_us(servers, true)),
               Table::num(mget_latency_us(servers, false))});
  }
  t.print();
  std::printf("\nreading: spreading 64 keys over a few servers helps (smaller\n"
              "per-server batches, fetched in parallel), but past that every\n"
              "request touches nearly every server and the per-server fixed cost\n"
              "takes over — the curve flattens and turns upward. More machines no\n"
              "longer buy capacity for multiget-heavy traffic: Facebook's\n"
              "'multiget hole' [2]. UCR's cheap per-server round trip pushes the\n"
              "turn much further out than the sockets stack.\n");
  return 0;
}
