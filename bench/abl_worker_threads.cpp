// Ablation: server worker-thread count (§V-A: "The number of worker
// threads can be set using a runtime parameter"). With 16 clients of
// small Gets, throughput rises with workers until another stage of the
// pipeline (HCA message rate / runtime dispatch) becomes the bottleneck.
#include <cstdio>

#include "common/table.hpp"
#include "core/workload.hpp"

using namespace rmc;

namespace {

double tps_with_workers(unsigned workers, core::TransportKind transport) {
  core::TestBedConfig config;
  config.cluster = core::ClusterKind::cluster_b;
  config.transport = transport;
  config.num_clients = 16;
  config.server.workers = workers;
  core::TestBed bed(config);
  core::WorkloadConfig workload;
  workload.pattern = core::OpPattern::pure_get;
  workload.value_size = 4;
  workload.ops_per_client = 1500;
  return core::run_workload(bed, workload).tps();
}

}  // namespace

int main() {
  std::printf("=== Ablation: worker threads, 16 clients, 4-byte Gets, Cluster B ===\n\n");
  Table t("aggregate KTPS vs memcached worker threads", {"workers", "UCR-IB", "IPoIB"});
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    t.add_row({std::to_string(workers),
               Table::num(tps_with_workers(workers, core::TransportKind::ucr_verbs) / 1000.0, 1),
               Table::num(tps_with_workers(workers, core::TransportKind::ipoib) / 1000.0, 1)});
  }
  t.print();
  std::printf("\nreading: the UCR path scales with workers until the runtime's\n"
              "dispatch/HCA engines saturate; the IPoIB path is bottlenecked by the\n"
              "kernel receive path long before worker count matters.\n");
  return 0;
}
