// Substrate validation (not a paper figure): raw transport-level
// ping-pong latency and large-message bandwidth for verbs and each socket
// stack, checked against the calibration anchors from §I of the paper:
// verbs small-message latency 1-2 us one-way, sockets-on-IB 20-25 us
// one-way.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "simnet/netparams.hpp"
#include "sockets/stack.hpp"
#include "ucr/runtime.hpp"

using namespace rmc;
using namespace rmc::literals;

namespace {

/// Raw verbs SEND/RECV ping-pong: one-way latency for `size` bytes.
double verbs_one_way_us(sim::LinkParams link, verbs::VerbsCosts costs, std::size_t size,
                        int iters = 200) {
  sim::Scheduler sched;
  sim::Fabric fabric(sched, link);
  sim::Host a(sched, 0, "a", 8), b(sched, 1, "b", 8);
  verbs::Hca ha(sched, fabric, a, costs), hb(sched, fabric, b, costs);
  auto cq_a = ha.create_cq();
  auto cq_b = hb.create_cq();
  auto& qa = ha.create_qp(*cq_a, *cq_a);
  auto& qb = hb.create_qp(*cq_b, *cq_b);
  qa.connect(hb.addr(), qb.qp_num());
  qb.connect(ha.addr(), qa.qp_num());

  std::vector<std::byte> buf_a(size), buf_b(size);
  auto& mr_a = ha.reg_mr(buf_a);
  auto& mr_b = hb.reg_mr(buf_b);

  sim::Time total = 0;
  sched.spawn([](sim::Scheduler& sch, verbs::QueuePair& qa2, verbs::QueuePair& qb2,
                 verbs::CompletionQueue& cq_a2, verbs::CompletionQueue& cq_b2,
                 std::vector<std::byte>& buf_a2, std::vector<std::byte>& buf_b2,
                 verbs::MemoryRegion& mr_a2, verbs::MemoryRegion& mr_b2, int iters2,
                 sim::Time& total2) -> sim::Task<> {
    const sim::Time start = sch.now();
    for (int i = 0; i < iters2; ++i) {
      (void)qb2.post_recv({.wr_id = 1, .buffer = buf_b2, .lkey = mr_b2.lkey()});
      (void)qa2.post_send(
          {.wr_id = 2, .opcode = verbs::Opcode::send, .local = buf_a2, .lkey = mr_a2.lkey()});
      while ((co_await cq_b2.next()).opcode != verbs::Opcode::recv) {
      }
      // pong
      (void)qa2.post_recv({.wr_id = 3, .buffer = buf_a2, .lkey = mr_a2.lkey()});
      (void)qb2.post_send(
          {.wr_id = 4, .opcode = verbs::Opcode::send, .local = buf_b2, .lkey = mr_b2.lkey()});
      while ((co_await cq_a2.next()).opcode != verbs::Opcode::recv) {
      }
    }
    total2 = sch.now() - start;
  }(sched, qa, qb, *cq_a, *cq_b, buf_a, buf_b, mr_a, mr_b, iters, total));
  sched.run();
  return to_us(total) / (2.0 * iters);
}

/// Socket ping-pong: one-way latency for `size` bytes.
double socket_one_way_us(sim::LinkParams link, sock::StackCosts costs, std::size_t size,
                         int iters = 100) {
  sim::Scheduler sched;
  sim::Fabric fabric(sched, link);
  sim::Host a(sched, 0, "a", 8), b(sched, 1, "b", 8);
  sock::NetStack sa(sched, fabric, a, costs), sb(sched, fabric, b, costs);
  sock::Listener& listener = sb.listen(1);
  sched.spawn([](sock::Listener& l, std::size_t size2) -> sim::Task<> {
    sock::Socket* s = co_await l.accept();
    std::vector<std::byte> buf(size2);
    while (true) {
      auto st = co_await s->recv_exact(buf);
      if (!st.ok()) co_return;
      (void)co_await s->send(buf);
    }
  }(listener, size));

  sim::Time total = 0;
  sched.spawn([](sim::Scheduler& sch, sock::NetStack& sa2, sock::NetStack& sb2,
                 std::size_t size2, int iters2, sim::Time& total2) -> sim::Task<> {
    auto r = co_await sa2.connect(sb2.addr(), 1);
    sock::Socket* s = *r;
    std::vector<std::byte> buf(size2);
    const sim::Time start = sch.now();
    for (int i = 0; i < iters2; ++i) {
      (void)co_await s->send(buf);
      (void)co_await s->recv_exact(buf);
    }
    total2 = sch.now() - start;
    s->close();
  }(sched, sa, sb, size, iters, total));
  sched.run();
  return to_us(total) / (2.0 * iters);
}

}  // namespace

int main() {
  std::printf("=== Transport micro-benchmarks (substrate validation) ===\n\n");

  verbs::VerbsCosts qdr_costs{.post_wr_ns = 250, .hca_process_ns = 250};
  verbs::VerbsCosts ddr_costs{.post_wr_ns = 350, .hca_process_ns = 350};

  {
    Table t("one-way latency (us) by payload size",
            {"size", "verbs-QDR", "verbs-DDR", "SDP-QDR", "IPoIB-QDR", "TOE-10GigE",
             "TCP-1GigE"});
    for (std::size_t size : {8u, 256u, 4096u, 65536u}) {
      t.add_row({format_size_label(size),
                 Table::num(verbs_one_way_us(sim::ib_qdr_link(), qdr_costs, size)),
                 Table::num(verbs_one_way_us(sim::ib_ddr_link(), ddr_costs, size)),
                 Table::num(socket_one_way_us(sim::ib_qdr_link(), sock::sdp_ib(), size)),
                 Table::num(socket_one_way_us(sim::ib_qdr_link(), sock::kernel_tcp_ipoib(), size)),
                 Table::num(socket_one_way_us(sim::ten_gige_link(), sock::toe_10ge(), size)),
                 Table::num(socket_one_way_us(sim::one_gige_link(), sock::kernel_tcp_1ge(), size))});
    }
    t.print();
  }

  const double verbs_small = verbs_one_way_us(sim::ib_qdr_link(), qdr_costs, 8);
  const double sdp_small = socket_one_way_us(sim::ib_qdr_link(), sock::sdp_ib(), 8);
  std::printf("\nanchors (paper §I): verbs one-way %.1f us (paper 1-2 us), "
              "sockets-on-IB %.1f us (paper 20-25 us)\n",
              verbs_small, sdp_small);

  // Large-message bandwidth: 4 MB stream in 64 KB messages.
  {
    Table t("achievable bandwidth (MB/s), 64 KiB messages", {"transport", "MB/s"});
    auto bw = [](double us_one_way, std::size_t size) {
      return static_cast<double>(size) / us_one_way;  // bytes/us == MB/s
    };
    t.add_row({"verbs-QDR", Table::num(bw(verbs_one_way_us(sim::ib_qdr_link(), qdr_costs, 65536), 65536), 0)});
    t.add_row({"verbs-DDR", Table::num(bw(verbs_one_way_us(sim::ib_ddr_link(), ddr_costs, 65536), 65536), 0)});
    t.add_row({"SDP-QDR", Table::num(bw(socket_one_way_us(sim::ib_qdr_link(), sock::sdp_ib(), 65536), 65536), 0)});
    t.add_row({"IPoIB-QDR", Table::num(bw(socket_one_way_us(sim::ib_qdr_link(), sock::kernel_tcp_ipoib(), 65536), 65536), 0)});
    t.add_row({"TOE-10GigE", Table::num(bw(socket_one_way_us(sim::ten_gige_link(), sock::toe_10ge(), 65536), 65536), 0)});
    t.print();
  }
  return 0;
}
