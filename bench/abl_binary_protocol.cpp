// Ablation: ASCII vs binary memcached protocol on the same socket
// transport (SDP, Cluster B). The byte-stream/memory-object semantic
// mismatch the paper blames (§I) has two parts: copies (inherent to
// sockets) and parsing (protocol-specific). The binary protocol removes
// most of the parsing but none of the copies — so it narrows, but nowhere
// near closes, the gap to UCR.
#include <cstdio>

#include "common/table.hpp"
#include "core/workload.hpp"

using namespace rmc;

namespace {

double latency(core::TransportKind transport, bool binary, std::uint32_t size) {
  core::TestBedConfig config;
  config.cluster = core::ClusterKind::cluster_b;
  config.transport = transport;
  config.client.binary_protocol = binary;
  core::TestBed bed(config);
  core::WorkloadConfig workload;
  workload.pattern = core::OpPattern::pure_get;
  workload.value_size = size;
  workload.ops_per_client = 300;
  return core::run_workload(bed, workload).mean_latency_us();
}

}  // namespace

int main() {
  std::printf("=== Ablation: ASCII vs binary protocol over SDP (Cluster B, Get) ===\n\n");
  Table t("Get latency (us)", {"size", "SDP ascii", "SDP binary", "UCR-IB"});
  for (std::uint32_t size : {4u, 256u, 4096u}) {
    t.add_row({format_size_label(size),
               Table::num(latency(core::TransportKind::sdp, false, size)),
               Table::num(latency(core::TransportKind::sdp, true, size)),
               Table::num(latency(core::TransportKind::ucr_verbs, false, size))});
  }
  t.print();
  std::printf("\nreading: binary framing shaves the parse cost off the socket path,\n"
              "but the copies, syscalls and wake-ups remain — the core of the gap\n"
              "to UCR is the transport semantics, not the text format. This\n"
              "supports the paper's argument that re-designing the transport (not\n"
              "the protocol encoding) is what unlocks RDMA-class latency.\n");
  return 0;
}
