// One-sided GET evaluation: RPC GETs (the paper's active-message design)
// versus client-bypass RDMA-read GETs against the self-verifying remote
// index (DESIGN.md §9), across value sizes on both cluster profiles.
//
// Expected shape: once the index is bootstrapped and a key's location
// hint is cached, a one-sided GET costs ONE RDMA Read (two on the cold
// path) and zero server CPU, so latency drops below the RPC GET and
// stays flat until the record read starts paying the wire's byte cost.
// Oversized values (> slot) transparently fall back and match the RPC
// line.
//
// `--json <file>` records the cells + headline for tools/run_benches.py;
// `--seed <n>` reruns under a different deterministic workload stream.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fig_common.hpp"

using namespace rmc;
using namespace rmc::bench;

namespace {

struct Cell {
  double rpc_us = 0;
  double one_us = 0;
  double rpc_tps = 0;
  double one_tps = 0;
};

Cell run_cell(core::ClusterKind cluster, std::uint32_t value_size, std::uint64_t seed) {
  Cell cell;
  for (bool onesided : {false, true}) {
    core::TestBedConfig config;
    config.cluster = cluster;
    config.transport = core::TransportKind::ucr_verbs;
    config.onesided = onesided;
    core::TestBed bed(config);
    core::WorkloadConfig workload;
    workload.pattern = core::OpPattern::pure_get;
    workload.value_size = value_size;
    workload.ops_per_client = 400;
    workload.seed = seed;
    const auto result = core::run_workload(bed, workload);
    (onesided ? cell.one_us : cell.rpc_us) = result.mean_latency_us();
    (onesided ? cell.one_tps : cell.rpc_tps) = result.tps();
  }
  return cell;
}

std::vector<Cell> sweep(core::ClusterKind cluster, const std::vector<std::uint32_t>& sizes,
                        std::uint64_t seed, const char* title, bool csv) {
  std::vector<Cell> cells;
  for (std::uint32_t size : sizes) cells.push_back(run_cell(cluster, size, seed));
  if (csv) {
    std::printf("# %s\nsize,rpc_us,onesided_us,rpc_ktps,onesided_ktps\n", title);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::printf("%u,%.3f,%.3f,%.1f,%.1f\n", sizes[i], cells[i].rpc_us, cells[i].one_us,
                  cells[i].rpc_tps / 1000.0, cells[i].one_tps / 1000.0);
    }
    std::printf("\n");
  } else {
    Table table(title, {"size", "rpc us", "1-sided us", "speedup", "rpc ktps", "1-sided ktps"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.add_row({format_size_label(sizes[i]), Table::num(cells[i].rpc_us),
                     Table::num(cells[i].one_us),
                     Table::num(cells[i].rpc_us / cells[i].one_us, 2) + "x",
                     Table::num(cells[i].rpc_tps / 1000.0, 1),
                     Table::num(cells[i].one_tps / 1000.0, 1)});
    }
    table.print();
    std::printf("\n");
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = csv_mode(argc, argv);
  const std::string profile_file = profile_path(argc, argv);
  const std::uint64_t seed = seed_arg(argc, argv);
  const std::vector<std::uint32_t> sizes{4, 64, 256, 1024, 4096};

  std::printf("=== One-sided GET: RPC vs client-bypass RDMA Read ===\n\n");
  const auto ddr =
      sweep(core::ClusterKind::cluster_a, sizes, seed, "Cluster A (DDR) pure Get", csv);
  const auto qdr =
      sweep(core::ClusterKind::cluster_b, sizes, seed, "Cluster B (QDR) pure Get", csv);

  // Headline: the acceptance criterion — small-value one-sided GETs beat
  // the RPC GET on the QDR profile. Index 1 is the 64 B row.
  const Cell& head = qdr[1];
  std::printf("headline: QDR 64B get RPC=%.3fus one-sided=%.3fus (%.2fx)\n", head.rpc_us,
              head.one_us, head.rpc_us / head.one_us);

  const std::string json_path = arg_value(argc, argv, "--json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    auto dump = [&](const char* name, const std::vector<Cell>& cells) {
      std::fprintf(f, "  \"%s\": {", name);
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::fprintf(f,
                     "%s\n    \"%u\": {\"rpc_us\": %.3f, \"onesided_us\": %.3f, "
                     "\"rpc_tps\": %.1f, \"onesided_tps\": %.1f}",
                     i ? "," : "", sizes[i], cells[i].rpc_us, cells[i].one_us,
                     cells[i].rpc_tps, cells[i].one_tps);
      }
      std::fprintf(f, "\n  }");
    };
    std::fprintf(f, "{\n");
    dump("ddr", ddr);
    std::fprintf(f, ",\n");
    dump("qdr", qdr);
    std::fprintf(f,
                 ",\n  \"headline\": {\"onesided_get_us_qdr_64\": %.3f, "
                 "\"rpc_get_us_qdr_64\": %.3f}\n}\n",
                 head.one_us, head.rpc_us);
    std::fclose(f);
    std::fprintf(stderr, "json written to %s\n", json_path.c_str());
  }

  // --trace <file>: one representative traced cell (one-sided 64 B GETs
  // on QDR) with a reduced op count to keep the artifact small.
  const std::string trace_file = arg_value(argc, argv, "--trace");
  if (!trace_file.empty()) {
    obs::tracer().enable();
    const Cell traced = run_cell(core::ClusterKind::cluster_b, 64, seed);
    std::printf("traced cell: QDR 64B one-sided=%.3fus\n", traced.one_us);
    write_trace(trace_file);
  }
  dump_metrics_if_requested(argc, argv);
  dump_latency_if_requested(argc, argv);
  write_profile(profile_file);
  return 0;
}
