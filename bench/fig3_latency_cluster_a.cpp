// Figure 3 reproduction: latency of Set and Get operations on Cluster A
// (ConnectX DDR InfiniBand + Chelsio 10GigE TOE), single client, 100% Set
// or 100% Get instruction mix, small (1B-4KB) and large (8KB-512KB)
// message panels.
//
// Paper shapes to check (§VI-B):
//  - UCR beats 10GigE-TOE by >= 4x at all sizes.
//  - UCR beats IPoIB and SDP by ~8x+ (small/medium) and ~5x (large).
//  - 4 KB Get over UCR on DDR is ~20 us.
#include <cstdio>

#include "fig_common.hpp"

using namespace rmc;
using namespace rmc::bench;

int main(int argc, char** argv) {
  const bool csv = csv_mode(argc, argv);
  // --tie-breaker insertion: run every cell with the insertion-mode
  // explorer installed; output must stay byte-identical (CI diffs it).
  init_tie_breaker(argc, argv);
  // --profile <file>: wall-clock attribution across every cell below.
  // Default off; the tables are byte-identical either way (the profiler
  // never touches sim time).
  const std::string profile_file = profile_path(argc, argv);
  const std::vector<core::TransportKind> transports{
      core::TransportKind::ucr_verbs, core::TransportKind::sdp, core::TransportKind::ipoib,
      core::TransportKind::toe_10ge};

  std::printf("=== Figure 3: Latency of Set and Get Operations on Cluster A (us) ===\n\n");
  latency_table("Fig 3(a) Set - Small Message", core::ClusterKind::cluster_a,
                core::OpPattern::pure_set, transports, small_sizes(), csv);
  latency_table("Fig 3(b) Set - Large Message", core::ClusterKind::cluster_a,
                core::OpPattern::pure_set, transports, large_sizes(), csv);
  latency_table("Fig 3(c) Get - Small Message", core::ClusterKind::cluster_a,
                core::OpPattern::pure_get, transports, small_sizes(), csv);
  latency_table("Fig 3(d) Get - Large Message", core::ClusterKind::cluster_a,
                core::OpPattern::pure_get, transports, large_sizes(), csv);

  // Headline check (paper: ~20 us for 4 KB Get on DDR; >= 4x vs TOE).
  const double ucr4k = latency_cell(core::ClusterKind::cluster_a,
                                    core::TransportKind::ucr_verbs,
                                    core::OpPattern::pure_get, 4096);
  const double toe4k = latency_cell(core::ClusterKind::cluster_a,
                                    core::TransportKind::toe_10ge,
                                    core::OpPattern::pure_get, 4096);
  std::printf("headline: 4KB Get UCR(DDR)=%.1f us (paper ~20), TOE/UCR=%.1fx (paper >=4x)\n",
              ucr4k, toe4k / ucr4k);

  // --trace <file>: re-run one representative cell (UCR 4 KB Get) with the
  // sim-time tracer on, so the request path client -> wire -> CQ -> worker
  // -> store -> reply can be opened in chrome://tracing / Perfetto.
  // Enabled only for this cell to keep the artifact small.
  const std::string trace_file = arg_value(argc, argv, "--trace");
  if (!trace_file.empty()) {
    obs::tracer().enable();
    const double traced_us = latency_cell(core::ClusterKind::cluster_a,
                                          core::TransportKind::ucr_verbs,
                                          core::OpPattern::pure_get, 4096, 50);
    std::printf("traced cell: 4KB Get UCR mean=%.1f us\n", traced_us);
    write_trace(trace_file);
  }

  // --metrics-json <file>: registry accumulated across every cell above.
  dump_metrics_if_requested(argc, argv);
  // --latency-json <file>: per-op stage spans (mc.latency.*) as JSON.
  dump_latency_if_requested(argc, argv);
  write_profile(profile_file);
  return 0;
}
