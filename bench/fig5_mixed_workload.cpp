// Figure 5 reproduction: latency of small messages under mixed instruction
// streams — non-interleaved (10 Sets then 90 Gets per 100 ops) and
// interleaved (alternating Set/Get) — on both clusters. Cluster A includes
// the 1 GigE baseline the paper adds in this figure.
//
// Paper shape (§VI-C): the mixed workloads follow the same ordering and
// factors as the pure Set/Get experiments. `--seed <n>` reruns the tables
// under a different deterministic key/value stream.
#include <cstdio>

#include "fig_common.hpp"

using namespace rmc;
using namespace rmc::bench;

int main(int argc, char** argv) {
  const bool csv = csv_mode(argc, argv);
  const std::string profile_file = profile_path(argc, argv);
  const std::uint64_t seed = seed_arg(argc, argv);
  const std::vector<core::TransportKind> cluster_a_transports{
      core::TransportKind::ucr_verbs, core::TransportKind::sdp, core::TransportKind::ipoib,
      core::TransportKind::toe_10ge, core::TransportKind::tcp_1ge};
  const std::vector<core::TransportKind> cluster_b_transports{
      core::TransportKind::ucr_verbs, core::TransportKind::sdp, core::TransportKind::ipoib};

  std::printf("=== Figure 5: Latency of Small Messages, Mixed Set/Get (us) ===\n\n");
  latency_table("Fig 5(a) Non-Interleaved (Set 10%/Get 90%) - Cluster A",
                core::ClusterKind::cluster_a, core::OpPattern::non_interleaved,
                cluster_a_transports, small_sizes(), csv, seed);
  latency_table("Fig 5(b) Non-Interleaved (Set 10%/Get 90%) - Cluster B",
                core::ClusterKind::cluster_b, core::OpPattern::non_interleaved,
                cluster_b_transports, small_sizes(), csv, seed);
  latency_table("Fig 5(c) Interleaved (Set 50%/Get 50%) - Cluster A",
                core::ClusterKind::cluster_a, core::OpPattern::interleaved,
                cluster_a_transports, small_sizes(), csv, seed);
  latency_table("Fig 5(d) Interleaved (Set 50%/Get 50%) - Cluster B",
                core::ClusterKind::cluster_b, core::OpPattern::interleaved,
                cluster_b_transports, small_sizes(), csv, seed);

  // --trace <file>: one representative traced cell (UCR 4 KB interleaved
  // on Cluster A), separate from the table cells above.
  const std::string trace_file = arg_value(argc, argv, "--trace");
  if (!trace_file.empty()) {
    obs::tracer().enable();
    const double traced_us = latency_cell(core::ClusterKind::cluster_a,
                                          core::TransportKind::ucr_verbs,
                                          core::OpPattern::interleaved, 4096, 50, seed);
    std::printf("traced cell: 4KB interleaved UCR mean=%.1f us\n", traced_us);
    write_trace(trace_file);
  }
  dump_metrics_if_requested(argc, argv);
  dump_latency_if_requested(argc, argv);
  write_profile(profile_file);
  return 0;
}
