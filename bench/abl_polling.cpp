// Ablation: polling vs event-driven completion queues (§II-A1: "Polling
// often results in the lowest latency"). The event-driven mode pays the
// interrupt + wake-up cost on every completion, which lands squarely on
// memcached's critical path.
#include <cstdio>

#include "common/table.hpp"
#include "core/workload.hpp"

using namespace rmc;

namespace {

double latency_with_cq(bool event_driven, std::uint32_t value_size) {
  core::TestBedConfig config;
  config.cluster = core::ClusterKind::cluster_b;
  config.transport = core::TransportKind::ucr_verbs;
  config.ucr.event_driven_cq = event_driven;
  core::TestBed bed(config);
  core::WorkloadConfig workload;
  workload.pattern = core::OpPattern::pure_get;
  workload.value_size = value_size;
  workload.ops_per_client = 300;
  return core::run_workload(bed, workload).mean_latency_us();
}

}  // namespace

int main() {
  std::printf("=== Ablation: CQ polling vs event-driven (Cluster B, 100%% Get) ===\n\n");
  Table t("Get latency (us)", {"size", "polling", "event-driven", "penalty"});
  for (std::uint32_t size : {4u, 256u, 4096u, 65536u}) {
    const double poll = latency_with_cq(false, size);
    const double event = latency_with_cq(true, size);
    t.add_row({format_size_label(size), Table::num(poll), Table::num(event),
               Table::num(event / poll, 2) + "x"});
  }
  t.print();
  std::printf("\nreading: interrupts add several microseconds per completion — fatal\n"
              "for a 7-12 us operation, irrelevant for a socket stack that already\n"
              "pays them. UCR polls (the paper's choice).\n");
  return 0;
}
