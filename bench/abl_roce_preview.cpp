// Future-work preview (§VII): the paper announces iWARP and RoCE ports of
// UCR — "We may expect to see good gains in performance with the
// iWARP/RoCE implementations of [UCR] that will run over a 10 GigE
// network" (§VI-A note). This bench runs UCR unchanged over RoCE and
// iWARP 10 GigE fabrics on Cluster A and compares them against native IB
// verbs and the TOE socket path on the very same wires.
#include <cstdio>

#include "common/table.hpp"
#include "core/workload.hpp"

using namespace rmc;

namespace {

double latency(core::TransportKind transport, std::uint32_t size) {
  core::TestBedConfig config;
  config.cluster = core::ClusterKind::cluster_a;
  config.transport = transport;
  core::TestBed bed(config);
  core::WorkloadConfig workload;
  workload.pattern = core::OpPattern::pure_get;
  workload.value_size = size;
  workload.ops_per_client = 300;
  return core::run_workload(bed, workload).mean_latency_us();
}

}  // namespace

int main() {
  std::printf("=== Future work preview: UCR over RoCE and iWARP (Cluster A, 100%% Get) ===\n\n");
  Table t("Get latency (us)",
          {"size", "UCR-IB(DDR)", "UCR-RoCE", "UCR-iWARP", "10GigE-TOE"});
  for (std::uint32_t size : {4u, 256u, 4096u, 65536u}) {
    t.add_row({format_size_label(size),
               Table::num(latency(core::TransportKind::ucr_verbs, size)),
               Table::num(latency(core::TransportKind::ucr_roce, size)),
               Table::num(latency(core::TransportKind::ucr_iwarp, size)),
               Table::num(latency(core::TransportKind::toe_10ge, size))});
  }
  t.print();
  std::printf("\nreading: the verbs programming model carries its OS-bypass benefit\n"
              "onto converged Ethernet — RoCE lands near native IB, iWARP pays its\n"
              "RNIC TCP termination, and both sit far below the TOE socket path on\n"
              "the same 10 GigE wire, as §VI-A anticipates.\n");
  return 0;
}
