// Figure 4 reproduction: latency of Set and Get operations on Cluster B
// (ConnectX QDR InfiniBand; the testbed had no 10 GigE cards), single
// client, 100% Set or 100% Get, small and large panels.
//
// Paper shapes (§VI-B):
//  - UCR beats IPoIB/SDP by >= 10x for small sizes, ~4x large.
//  - 4 KB Get over UCR on QDR is ~12 us.
//  - SDP on QDR was observed to be noisy/slow (a software artifact the
//    paper calls out); our model degrades SDP on Cluster B accordingly.
#include <cstdio>

#include "fig_common.hpp"

using namespace rmc;
using namespace rmc::bench;

int main(int argc, char** argv) {
  const bool csv = csv_mode(argc, argv);
  // --tie-breaker insertion: run every cell with the insertion-mode
  // explorer installed; output must stay byte-identical (CI diffs it).
  init_tie_breaker(argc, argv);
  const std::string profile_file = profile_path(argc, argv);
  const std::vector<core::TransportKind> transports{
      core::TransportKind::ucr_verbs, core::TransportKind::sdp, core::TransportKind::ipoib};

  std::printf("=== Figure 4: Latency of Set and Get Operations on Cluster B (us) ===\n\n");
  latency_table("Fig 4(a) Set - Small Message", core::ClusterKind::cluster_b,
                core::OpPattern::pure_set, transports, small_sizes(), csv);
  latency_table("Fig 4(b) Set - Large Message", core::ClusterKind::cluster_b,
                core::OpPattern::pure_set, transports, large_sizes(), csv);
  latency_table("Fig 4(c) Get - Small Message", core::ClusterKind::cluster_b,
                core::OpPattern::pure_get, transports, small_sizes(), csv);
  latency_table("Fig 4(d) Get - Large Message", core::ClusterKind::cluster_b,
                core::OpPattern::pure_get, transports, large_sizes(), csv);

  const double ucr4k = latency_cell(core::ClusterKind::cluster_b,
                                    core::TransportKind::ucr_verbs,
                                    core::OpPattern::pure_get, 4096);
  const double ipoib4k = latency_cell(core::ClusterKind::cluster_b,
                                      core::TransportKind::ipoib,
                                      core::OpPattern::pure_get, 4096);
  std::printf("headline: 4KB Get UCR(QDR)=%.1f us (paper ~12), IPoIB/UCR=%.1fx (paper 4-10x)\n",
              ucr4k, ipoib4k / ucr4k);

  // --trace <file>: one representative traced cell (UCR 4 KB Get on QDR),
  // kept separate from the table cells so the artifact stays small.
  const std::string trace_file = arg_value(argc, argv, "--trace");
  if (!trace_file.empty()) {
    obs::tracer().enable();
    const double traced_us = latency_cell(core::ClusterKind::cluster_b,
                                          core::TransportKind::ucr_verbs,
                                          core::OpPattern::pure_get, 4096, 50);
    std::printf("traced cell: 4KB Get UCR mean=%.1f us\n", traced_us);
    write_trace(trace_file);
  }
  dump_metrics_if_requested(argc, argv);
  dump_latency_if_requested(argc, argv);
  write_profile(profile_file);
  return 0;
}
