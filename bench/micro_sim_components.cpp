// Google-benchmark microbenchmarks of the simulation substrate itself:
// scheduler event throughput, coroutine task switching, channel hand-off,
// and end-to-end simulated-seconds-per-wall-second for a memcached
// workload — the number that bounds how big an experiment the simulator
// can run.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/workload.hpp"
#include "obs/profiler.hpp"
#include "simnet/channel.hpp"
#include "simnet/event.hpp"
#include "simnet/scheduler.hpp"

namespace rmc::sim {
namespace {

void BM_SchedulerEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Scheduler sched;
    constexpr int kEvents = 10000;
    int sink = 0;
    for (int i = 0; i < kEvents; ++i) {
      sched.call_at(static_cast<Time>(i), [&sink] { ++sink; });
    }
    state.ResumeTiming();
    sched.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerEventDispatch);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler sched;
    Channel<int> a(sched), b(sched);
    constexpr int kRounds = 5000;
    sched.spawn([](Channel<int>& a2, Channel<int>& b2) -> Task<> {
      for (int i = 0; i < kRounds; ++i) {
        a2.send(i);
        (void)co_await b2.recv();
      }
    }(a, b));
    sched.spawn([](Channel<int>& a2, Channel<int>& b2) -> Task<> {
      for (int i = 0; i < kRounds; ++i) {
        (void)co_await a2.recv();
        b2.send(i);
      }
    }(a, b));
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_CounterWaitWake(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler sched;
    Counter counter(sched);
    constexpr int kRounds = 5000;
    sched.spawn([](Counter& c) -> Task<> {
      for (int i = 1; i <= kRounds; ++i) {
        (void)co_await c.wait_geq(static_cast<std::uint64_t>(i));
      }
    }(counter));
    for (int i = 0; i < kRounds; ++i) {
      sched.call_at(static_cast<Time>(i), [&counter] { counter.add(); });
    }
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_CounterWaitWake);

/// How much simulated memcached traffic we chew through per wall second:
/// a full Cluster B UCR testbed doing 4-byte Gets.
void BM_EndToEndSimulatedOps(benchmark::State& state) {
  std::uint64_t ops = 0;
  for (auto _ : state) {
    core::TestBedConfig config;
    config.cluster = core::ClusterKind::cluster_b;
    config.transport = core::TransportKind::ucr_verbs;
    core::TestBed bed(config);
    core::WorkloadConfig workload;
    workload.pattern = core::OpPattern::pure_get;
    workload.value_size = 4;
    workload.ops_per_client = 2000;
    const auto result = core::run_workload(bed, workload);
    ops += result.total_ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.SetLabel("simulated memcached ops per wall second");
}
BENCHMARK(BM_EndToEndSimulatedOps);

}  // namespace
}  // namespace rmc::sim

// Custom main instead of BENCHMARK_MAIN(): strips `--profile <file>`
// (enable the attribution profiler across every benchmark, then dump the
// rmc-prof/1 JSON plus <file>.folded collapsed stacks) before handing the
// rest of argv to google-benchmark.
int main(int argc, char** argv) {
  std::string profile_file;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_file = argv[i + 1];
      ++i;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  if (!profile_file.empty()) rmc::obs::profiler().enable();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!profile_file.empty()) {
    rmc::obs::profiler().disable();
    const std::string json = rmc::obs::profiler().to_json();
    if (std::FILE* f = std::fopen(profile_file.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "profile written to %s\n", profile_file.c_str());
    } else {
      std::fprintf(stderr, "cannot write profile to %s\n", profile_file.c_str());
    }
    const std::string folded = rmc::obs::profiler().to_collapsed();
    const std::string folded_path = profile_file + ".folded";
    if (std::FILE* f = std::fopen(folded_path.c_str(), "w")) {
      std::fwrite(folded.data(), 1, folded.size(), f);
      std::fclose(f);
    }
  }
  return 0;
}
